// Package cluster simulates the paper's distributed system model
// (Section 4.1): jobs generated per user by Poisson processes are dispatched
// to computers according to a load-balancing strategy profile; each computer
// is an M/M/1 station serving jobs FCFS, run-to-completion (no preemption).
//
// The package replaces the authors' Sim++ setup: single runs collect
// per-user and per-computer response-time statistics with warmup deletion;
// Replicate fans independent replications across the work-stealing engine in
// internal/replicate and reports Student-t confidence intervals, mirroring
// the paper's "each run was replicated five times with different random
// number streams". Summaries are bitwise identical for any worker count.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"nashlb/internal/des"
	"nashlb/internal/game"
	"nashlb/internal/replicate"
	"nashlb/internal/rng"
	"nashlb/internal/stats"
)

// Config describes one simulation run.
type Config struct {
	// Rates holds the computers' service rates mu_j (jobs/second).
	Rates []float64
	// Arrivals holds the users' job generation rates phi_i (jobs/second).
	Arrivals []float64
	// Profile is the strategy profile used for dispatching: a job of user i
	// goes to computer j with probability Profile[i][j].
	Profile game.Profile
	// Duration is the measured simulated time in seconds (after warmup).
	Duration float64
	// Warmup is the initial simulated time whose jobs are excluded from
	// statistics (measured by arrival time).
	Warmup float64
	// Seed roots the random streams; the same seed reproduces the run
	// exactly.
	Seed uint64
	// SampleEvery, when positive, samples every computer's run-queue length
	// (jobs in system) with this period; the samples feed the run-queue
	// based rate estimator in internal/estimate.
	SampleEvery float64
	// Arrival selects the interarrival process (default PoissonArrivals,
	// the paper's model). The non-Poisson options probe how robust an
	// equilibrium computed under M/M/1 assumptions is to real traffic.
	Arrival ArrivalModel
	// SCV is the squared coefficient of variation for BurstyArrivals
	// (>= 1; ignored otherwise).
	SCV float64
	// Service selects the service-time distribution (default
	// ExponentialService, the paper's M/M/1 model).
	Service ServiceModel
	// ServiceSCV is the squared coefficient of variation for
	// BurstyService (>= 1; ignored otherwise).
	ServiceSCV float64
	// OnJob, when non-nil, is invoked for every measured (post-warmup)
	// job completion, in completion order. It enables trace recording and
	// custom statistics without touching the model.
	OnJob func(JobRecord)
	// Rebalance, when non-nil, lets a load-balancing policy rewrite the
	// dispatch profile while the simulation runs — the paper's "the
	// execution of this algorithm is initiated periodically" made
	// concrete. See RebalancePolicy.
	Rebalance *RebalancePolicy
	// Dispatch selects how each job picks its computer (default
	// ProbabilisticDispatch, the paper's static model). The dynamic
	// alternatives are classical baselines requiring global instantaneous
	// state per job, which static schemes deliberately avoid.
	Dispatch DispatchPolicy
}

// DispatchPolicy selects the per-job routing rule.
type DispatchPolicy int

const (
	// ProbabilisticDispatch routes a job of user i to computer j with
	// probability Profile[i][j] — the paper's static splitting.
	ProbabilisticDispatch DispatchPolicy = iota
	// ShortestQueueDispatch routes every job to the computer with the
	// fewest jobs in system, breaking ties toward the fastest rate (JSQ).
	// The Profile is ignored (beyond shape validation).
	ShortestQueueDispatch
	// ShortestDelayDispatch routes every job to the computer minimizing
	// (jobs in system + 1)/mu — shortest-expected-delay (SED), the
	// heterogeneity-aware variant of JSQ.
	ShortestDelayDispatch
)

// String names the policy.
func (d DispatchPolicy) String() string {
	switch d {
	case ProbabilisticDispatch:
		return "probabilistic"
	case ShortestQueueDispatch:
		return "jsq"
	case ShortestDelayDispatch:
		return "sed"
	default:
		return fmt.Sprintf("DispatchPolicy(%d)", int(d))
	}
}

// RebalancePolicy periodically hands the live cluster state to a policy
// function that may install a new dispatch profile.
type RebalancePolicy struct {
	// Every is the re-balancing period in simulated seconds (> 0).
	Every float64
	// Do receives the current simulation time, each computer's current
	// run-queue length (jobs in system), and a copy of the profile in
	// effect. A non-nil feasible return value replaces the dispatch
	// profile from this instant; nil keeps the current one. The queueLens
	// slice is reused between calls; copy it before retaining.
	Do func(now float64, queueLens []int, current game.Profile) game.Profile
}

// JobRecord describes one completed job, for tracing and custom analysis.
type JobRecord struct {
	// User generated the job; Computer executed it.
	User, Computer int
	// Arrival, Start and Completion are simulation timestamps: when the
	// job entered the system, began service, and finished.
	Arrival, Start, Completion float64
}

// ResponseTime returns Completion - Arrival.
func (r JobRecord) ResponseTime() float64 { return r.Completion - r.Arrival }

// WaitingTime returns Start - Arrival (time in queue).
func (r JobRecord) WaitingTime() float64 { return r.Start - r.Arrival }

// ServiceTime returns Completion - Start.
func (r JobRecord) ServiceTime() float64 { return r.Completion - r.Start }

// ServiceModel selects the per-job service-time distribution at every
// computer. Non-exponential options turn each computer into an M/G/1
// station, letting the Pollaczek–Khinchine formula validate the simulator
// and letting experiments probe the equilibrium's sensitivity to the
// exponential-service assumption.
type ServiceModel int

const (
	// ExponentialService is the paper's model (M/M/1).
	ExponentialService ServiceModel = iota
	// DeterministicService gives every job exactly 1/mu seconds (M/D/1).
	DeterministicService
	// BurstyService draws hyperexponential service times with the
	// configured ServiceSCV (heavy-tailed-ish job sizes).
	BurstyService
)

// String names the model.
func (s ServiceModel) String() string {
	switch s {
	case ExponentialService:
		return "exponential"
	case DeterministicService:
		return "deterministic"
	case BurstyService:
		return "bursty"
	default:
		return fmt.Sprintf("ServiceModel(%d)", int(s))
	}
}

// ArrivalModel selects the job interarrival process of every user.
type ArrivalModel int

const (
	// PoissonArrivals is the paper's model: exponential interarrivals.
	PoissonArrivals ArrivalModel = iota
	// DeterministicArrivals spaces each user's jobs exactly 1/phi apart
	// (smoother than Poisson; response times improve).
	DeterministicArrivals
	// BurstyArrivals draws hyperexponential interarrivals with the
	// configured SCV (burstier than Poisson; response times degrade).
	BurstyArrivals
)

// String names the model.
func (a ArrivalModel) String() string {
	switch a {
	case PoissonArrivals:
		return "poisson"
	case DeterministicArrivals:
		return "deterministic"
	case BurstyArrivals:
		return "bursty"
	default:
		return fmt.Sprintf("ArrivalModel(%d)", int(a))
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Rates) == 0 || len(c.Arrivals) == 0 {
		return errors.New("cluster: need at least one computer and one user")
	}
	for j, mu := range c.Rates {
		if !(mu > 0) {
			return fmt.Errorf("cluster: invalid rate mu[%d]=%g", j, mu)
		}
	}
	for i, phi := range c.Arrivals {
		if !(phi > 0) {
			return fmt.Errorf("cluster: invalid arrival phi[%d]=%g", i, phi)
		}
	}
	if len(c.Profile) != len(c.Arrivals) {
		return fmt.Errorf("cluster: profile has %d rows, want %d", len(c.Profile), len(c.Arrivals))
	}
	for i := range c.Profile {
		if err := game.CheckStrategy(c.Profile[i], len(c.Rates)); err != nil {
			return fmt.Errorf("cluster: user %d: %w", i, err)
		}
	}
	if !(c.Duration > 0) {
		return fmt.Errorf("cluster: non-positive duration %g", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("cluster: negative warmup %g", c.Warmup)
	}
	switch c.Arrival {
	case PoissonArrivals, DeterministicArrivals:
	case BurstyArrivals:
		if c.SCV < 1 {
			return fmt.Errorf("cluster: bursty arrivals need SCV >= 1, got %g", c.SCV)
		}
	default:
		return fmt.Errorf("cluster: unknown arrival model %d", int(c.Arrival))
	}
	switch c.Service {
	case ExponentialService, DeterministicService:
	case BurstyService:
		if c.ServiceSCV < 1 {
			return fmt.Errorf("cluster: bursty service needs ServiceSCV >= 1, got %g", c.ServiceSCV)
		}
	default:
		return fmt.Errorf("cluster: unknown service model %d", int(c.Service))
	}
	if c.Rebalance != nil {
		if !(c.Rebalance.Every > 0) {
			return fmt.Errorf("cluster: rebalance period %g must be positive", c.Rebalance.Every)
		}
		if c.Rebalance.Do == nil {
			return fmt.Errorf("cluster: rebalance policy has nil Do")
		}
	}
	switch c.Dispatch {
	case ProbabilisticDispatch, ShortestQueueDispatch, ShortestDelayDispatch:
	default:
		return fmt.Errorf("cluster: unknown dispatch policy %d", int(c.Dispatch))
	}
	return nil
}

// serviceTime draws a job's service time at a computer with rate mu.
func (c *Config) serviceTime(stream *rng.Stream, mu float64) float64 {
	switch c.Service {
	case DeterministicService:
		return 1 / mu
	case BurstyService:
		return stream.HyperExp(mu, c.ServiceSCV)
	default:
		return stream.Exp(mu)
	}
}

// interarrival draws the next interarrival time for a user with rate phi.
func (c *Config) interarrival(stream *rng.Stream, phi float64) float64 {
	switch c.Arrival {
	case DeterministicArrivals:
		return 1 / phi
	case BurstyArrivals:
		return stream.HyperExp(phi, c.SCV)
	default:
		return stream.Exp(phi)
	}
}

// RunResult holds the measurements of a single simulation run.
type RunResult struct {
	// PerUser accumulates response times of completed jobs by user.
	PerUser []stats.Running
	// PerComputer accumulates response times of completed jobs by computer.
	PerComputer []stats.Running
	// QueueLengths accumulates sampled run-queue lengths (jobs in system,
	// including the one in service) per computer; empty unless
	// Config.SampleEvery > 0.
	QueueLengths []stats.Running
	// Generated and Completed count measured jobs (post-warmup arrivals).
	Generated, Completed int64
	// Rebalances counts how many times a RebalancePolicy installed a new
	// profile during the run.
	Rebalances int
	// BusyTime accumulates each computer's total in-service time within
	// the measurement window, so BusyTime[j]/(EndTime-Warmup) estimates
	// the utilization rho_j.
	BusyTime []float64
	// EndTime is the simulated time at which the run stopped.
	EndTime float64
	// Warmup echoes the configured warmup for utilization computations.
	Warmup float64
}

// Utilization returns the measured busy fraction of computer j over the
// measurement window.
func (r *RunResult) Utilization(j int) float64 {
	window := r.EndTime - r.Warmup
	if window <= 0 {
		return 0
	}
	return r.BusyTime[j] / window
}

// UserMeans returns the per-user mean response times.
func (r *RunResult) UserMeans() []float64 {
	out := make([]float64, len(r.PerUser))
	for i := range r.PerUser {
		out[i] = r.PerUser[i].Mean()
	}
	return out
}

// OverallMean returns the completion-weighted mean response time over all
// jobs, the paper's "expected response time" metric.
func (r *RunResult) OverallMean() float64 {
	var n int64
	var sum float64
	for i := range r.PerUser {
		n += r.PerUser[i].N()
		sum += r.PerUser[i].Mean() * float64(r.PerUser[i].N())
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fairness returns Jain's fairness index over the per-user mean response
// times.
func (r *RunResult) Fairness() float64 {
	return stats.JainFairness(r.UserMeans())
}

// job is a unit of work flowing through the model.
type job struct {
	user    int32
	counted bool
	arrival float64
	start   float64
}

// jobRing is a growable FIFO ring buffer of jobs. Pushing into spare
// capacity and popping never allocate, so a station queue that has reached
// its high-water mark is allocation-free for the rest of the run.
type jobRing struct {
	buf  []job
	head int
	n    int
}

func (q *jobRing) len() int { return q.n }

func (q *jobRing) push(j job) {
	if q.n == len(q.buf) {
		q.grow(2*len(q.buf) + 1)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = j
	q.n++
}

func (q *jobRing) pop() job {
	j := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return j
}

// grow resizes the ring to the next power of two >= want (power-of-two
// sizes keep the index mask branch-free).
func (q *jobRing) grow(want int) {
	size := 1
	for size < want {
		size <<= 1
	}
	buf := make([]job, size)
	for k := 0; k < q.n; k++ {
		buf[k] = q.buf[(q.head+k)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// station is one computer: an M/M/1 FCFS queue plus its server state.
type station struct {
	queue   jobRing
	busy    bool
	current job
}

// inSystem returns jobs queued plus the one in service.
func (st *station) inSystem() int {
	l := st.queue.len()
	if st.busy {
		l++
	}
	return l
}

// Typed event kinds dispatched by runner.handle. Replacing the seed
// kernel's per-job closures with a switch over these kinds makes the
// steady-state job path allocation-free (see TestSimulateSteadyStateAllocs).
const (
	evArrival   int32 = iota // arg: user index
	evDeparture              // arg: station index
	evRebalance              // arg unused
	evSample                 // arg unused
)

// initialRingSize pre-sizes every station queue so short transients do not
// allocate; M/M/1 queues beyond this depth indicate near-saturation anyway.
const initialRingSize = 64

// runner is the mutable state of one simulation run. It exists (rather
// than closures over Simulate locals) so the des kernel can dispatch typed
// events into it without allocating, and so benchmarks and allocation
// tests can drive the event loop one step at a time.
type runner struct {
	cfg     *Config
	sim     *des.Simulator
	res     *RunResult
	horizon float64

	stations       []station
	arrivalStreams []*rng.Stream
	routeStreams   []*rng.Stream
	serviceStreams []*rng.Stream
	samplers       []*rng.Alias
	profile        game.Profile
	aliasRow       []float64 // scratch for buildSamplers
	lens           []int     // scratch for the rebalance callback
	schedErr       error
}

func newRunner(cfg *Config) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, m := len(cfg.Rates), len(cfg.Arrivals)
	r := &runner{
		cfg:            cfg,
		sim:            des.New(),
		horizon:        cfg.Warmup + cfg.Duration,
		stations:       make([]station, n),
		arrivalStreams: make([]*rng.Stream, m),
		routeStreams:   make([]*rng.Stream, m),
		serviceStreams: make([]*rng.Stream, n),
		samplers:       make([]*rng.Alias, m),
		aliasRow:       make([]float64, n),
		lens:           make([]int, n),
		profile:        cfg.Profile.Clone(),
		res: &RunResult{
			PerUser:     make([]stats.Running, m),
			PerComputer: make([]stats.Running, n),
			BusyTime:    make([]float64, n),
			Warmup:      cfg.Warmup,
		},
	}
	src := rng.NewSource(cfg.Seed)
	for i := 0; i < m; i++ {
		r.arrivalStreams[i] = src.Stream(fmt.Sprintf("arrival/%d", i))
		r.routeStreams[i] = src.Stream(fmt.Sprintf("route/%d", i))
	}
	for j := 0; j < n; j++ {
		r.serviceStreams[j] = src.Stream(fmt.Sprintf("service/%d", j))
		r.stations[j].queue.grow(initialRingSize)
	}
	if cfg.Dispatch == ProbabilisticDispatch {
		if err := r.buildSamplers(); err != nil {
			return nil, err
		}
	}
	// The schedule never exceeds one pending arrival per user, one pending
	// departure per busy station, and the two periodic timers.
	r.sim.Grow(m + n + 4)
	r.sim.SetHandler(r.handle)

	// Per-user job sources (Poisson by default; see ArrivalModel).
	for i := 0; i < m; i++ {
		r.schedule(cfg.interarrival(r.arrivalStreams[i], cfg.Arrivals[i]), evArrival, int32(i))
	}
	// Optional periodic re-balancing policy.
	if cfg.Rebalance != nil {
		r.schedule(cfg.Rebalance.Every, evRebalance, 0)
	}
	// Optional queue-length sampler.
	if cfg.SampleEvery > 0 {
		r.res.QueueLengths = make([]stats.Running, n)
		r.schedule(cfg.SampleEvery, evSample, 0)
	}
	return r, nil
}

func (r *runner) schedule(delay float64, kind, arg int32) {
	if _, err := r.sim.ScheduleEvent(delay, kind, arg); err != nil && r.schedErr == nil {
		r.schedErr = err
	}
}

// buildSamplers rebuilds the precomputed O(1) alias samplers, one per user,
// whenever a rebalance installs a new profile. Rows the validator accepted
// always build (non-negative, sum 1), so errors cannot occur after setup.
func (r *runner) buildSamplers() error {
	for i := range r.profile {
		// CheckStrategy tolerates fractions down to -FeasibilityTol;
		// clamp those to zero weight for the sampler.
		for j, f := range r.profile[i] {
			r.aliasRow[j] = math.Max(f, 0)
		}
		a, err := rng.NewAlias(r.aliasRow)
		if err != nil {
			return fmt.Errorf("cluster: user %d: %w", i, err)
		}
		r.samplers[i] = a
	}
	return nil
}

// handle dispatches one typed event; it is the simulation's entire inner
// loop and must not allocate on the arrival/departure path.
func (r *runner) handle(kind, arg int32) {
	switch kind {
	case evArrival:
		i := int(arg)
		r.dispatch(i)
		r.schedule(r.cfg.interarrival(r.arrivalStreams[i], r.cfg.Arrivals[i]), evArrival, arg)
	case evDeparture:
		r.depart(int(arg))
	case evRebalance:
		r.rebalance()
	case evSample:
		r.sample()
	}
}

// pick selects the computer for user i's next job.
func (r *runner) pick(i int) int {
	switch r.cfg.Dispatch {
	case ShortestQueueDispatch, ShortestDelayDispatch:
		best, bestScore := 0, math.Inf(1)
		for j := range r.stations {
			l := float64(r.stations[j].inSystem())
			var score float64
			if r.cfg.Dispatch == ShortestQueueDispatch {
				// Tie-break toward faster computers.
				score = l - 1e-9*r.cfg.Rates[j]
			} else {
				score = (l + 1) / r.cfg.Rates[j]
			}
			if score < bestScore {
				best, bestScore = j, score
			}
		}
		return best
	default:
		return r.samplers[i].Pick(r.routeStreams[i])
	}
}

func (r *runner) dispatch(i int) {
	j := r.pick(i)
	counted := r.sim.Now() >= r.cfg.Warmup
	if counted {
		r.res.Generated++
	}
	r.stations[j].queue.push(job{user: int32(i), arrival: r.sim.Now(), counted: counted})
	r.startService(j)
}

// startService begins serving the head-of-line job if station j is idle,
// scheduling its departure.
func (r *runner) startService(j int) {
	st := &r.stations[j]
	if st.busy || st.queue.len() == 0 {
		return
	}
	st.current = st.queue.pop()
	st.current.start = r.sim.Now()
	st.busy = true
	r.schedule(r.cfg.serviceTime(r.serviceStreams[j], r.cfg.Rates[j]), evDeparture, int32(j))
}

func (r *runner) depart(j int) {
	st := &r.stations[j]
	done := st.current
	st.busy = false
	now := r.sim.Now()
	if busyFrom := math.Max(done.start, r.cfg.Warmup); now > busyFrom {
		r.res.BusyTime[j] += now - busyFrom
	}
	if done.counted {
		rt := now - done.arrival
		r.res.PerUser[done.user].Add(rt)
		r.res.PerComputer[j].Add(rt)
		r.res.Completed++
		if r.cfg.OnJob != nil {
			r.cfg.OnJob(JobRecord{
				User: int(done.user), Computer: j,
				Arrival: done.arrival, Start: done.start, Completion: now,
			})
		}
	}
	r.startService(j)
}

func (r *runner) rebalance() {
	for j := range r.stations {
		r.lens[j] = r.stations[j].inSystem()
	}
	if next := r.cfg.Rebalance.Do(r.sim.Now(), r.lens, r.profile.Clone()); next != nil {
		n, m := len(r.cfg.Rates), len(r.cfg.Arrivals)
		ok := len(next) == m
		for i := 0; ok && i < m; i++ {
			ok = game.CheckStrategy(next[i], n) == nil
		}
		if ok {
			r.profile = next.Clone()
			if r.cfg.Dispatch == ProbabilisticDispatch {
				// Cannot fail: every row passed CheckStrategy.
				_ = r.buildSamplers()
			}
			r.res.Rebalances++
		}
	}
	r.schedule(r.cfg.Rebalance.Every, evRebalance, 0)
}

func (r *runner) sample() {
	if r.sim.Now() >= r.cfg.Warmup {
		for j := range r.stations {
			r.res.QueueLengths[j].Add(float64(r.stations[j].inSystem()))
		}
	}
	r.schedule(r.cfg.SampleEvery, evSample, 0)
}

// finish seals the run after the event loop stops.
func (r *runner) finish() (*RunResult, error) {
	if r.schedErr != nil {
		return nil, r.schedErr
	}
	r.res.EndTime = r.sim.Now()
	return r.res, nil
}

// Simulate performs one discrete-event run of the model and returns its
// measurements.
func Simulate(cfg Config) (*RunResult, error) {
	r, err := newRunner(&cfg)
	if err != nil {
		return nil, err
	}
	r.sim.Run(r.horizon)
	return r.finish()
}

// Summary aggregates replicated runs into confidence intervals, the form in
// which the paper reports every simulated number.
type Summary struct {
	// Replications is the number of independent runs.
	Replications int
	// UserTime[i] is the CI for user i's mean response time.
	UserTime []stats.Interval
	// OverallTime is the CI for the job-weighted mean response time.
	OverallTime stats.Interval
	// Fairness is the CI for Jain's index of the per-user means.
	Fairness stats.Interval
	// Completed is the total number of measured jobs across replications.
	Completed int64
	// PooledUser[i] pools user i's response-time moments over every
	// measured job of every replication (stats.Welford.Merge, the Chan et
	// al. parallel-moments combination); PooledOverall pools all users.
	// Unlike the per-replication CIs above, these weight every job equally.
	PooledUser    []stats.Welford
	PooledOverall stats.Welford
	// Runs keeps the individual replication results for inspection.
	Runs []*RunResult
}

// MaxRelativeError returns the worst relative CI half-width across the
// overall time and all per-user times — the paper's "standard error less
// than 5%" acceptance check.
func (s *Summary) MaxRelativeError() float64 {
	worst := s.OverallTime.RelativeError()
	for _, iv := range s.UserTime {
		if re := iv.RelativeError(); re > worst {
			worst = re
		}
	}
	return worst
}

// Replicate runs `reps` independent replications of cfg on the parallel
// replication engine and summarizes them. It is ReplicateWorkers with the
// default pool size (GOMAXPROCS). reps must be at least 2 for confidence
// intervals.
func Replicate(cfg Config, reps int) (*Summary, error) {
	return ReplicateWorkers(cfg, reps, 0)
}

// ReplicateWorkers is Replicate with an explicit worker count (values <= 0
// select GOMAXPROCS). Each replication draws from streams derived solely
// from (cfg.Seed, replication index) via the rng substream tree, and the
// engine merges per-replication results in index order, so the Summary is
// bitwise identical for every worker count — the property pinned by
// TestReplicateDeterministicAcrossWorkers in golden_test.go.
func ReplicateWorkers(cfg Config, reps, workers int) (*Summary, error) {
	if reps < 2 {
		return nil, errors.New("cluster: need at least 2 replications")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	runs, err := replicate.Map(reps, replicate.Options{Workers: workers}, func(r int) (*RunResult, error) {
		c := cfg
		// Independent streams per replication, keyed by index alone.
		c.Seed = rng.NewSource(cfg.Seed).Replication(r).Stream("root").Uint64()
		return Simulate(c)
	})
	if err != nil {
		return nil, err
	}

	m := len(cfg.Arrivals)
	sum := &Summary{
		Replications: reps,
		UserTime:     make([]stats.Interval, m),
		PooledUser:   make([]stats.Welford, m),
		Runs:         runs,
	}
	overall := make([]float64, reps)
	fair := make([]float64, reps)
	perUser := make([][]float64, m)
	for i := range perUser {
		perUser[i] = make([]float64, reps)
	}
	for r, run := range runs {
		overall[r] = run.OverallMean()
		fair[r] = run.Fairness()
		means := run.UserMeans()
		for i := 0; i < m; i++ {
			perUser[i][r] = means[i]
			sum.PooledUser[i].Merge(run.PerUser[i])
			sum.PooledOverall.Merge(run.PerUser[i])
		}
		sum.Completed += run.Completed
	}
	if sum.OverallTime, err = stats.MeanCI95(overall); err != nil {
		return nil, err
	}
	if sum.Fairness, err = stats.MeanCI95(fair); err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		if sum.UserTime[i], err = stats.MeanCI95(perUser[i]); err != nil {
			return nil, err
		}
	}
	return sum, nil
}

// PredictedUserTimes returns the analytic M/M/1 predictions D_i for the
// configuration, the values the simulation estimates. Saturated
// configurations yield +Inf entries.
func PredictedUserTimes(cfg Config) []float64 {
	sys := &game.System{Rates: cfg.Rates, Arrivals: cfg.Arrivals}
	return sys.UserResponseTimes(cfg.Profile)
}

// PredictedOverallTime returns the analytic job-weighted mean response time.
func PredictedOverallTime(cfg Config) float64 {
	sys := &game.System{Rates: cfg.Rates, Arrivals: cfg.Arrivals}
	d := sys.OverallResponseTime(cfg.Profile)
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}
