package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"nashlb/internal/stats"
)

// summaryHash folds every numeric field of a Summary — CIs, pooled moments,
// per-run statistics — into one FNV-1a hash, bit pattern by bit pattern. Two
// summaries hash equal iff they are bitwise identical.
func summaryHash(t *testing.T, s *Summary) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	f := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	n := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	iv := func(v stats.Interval) {
		f(v.Mean)
		f(v.HalfWide)
		f(v.Level)
		n(int64(v.N))
	}
	n(int64(s.Replications))
	n(s.Completed)
	iv(s.OverallTime)
	iv(s.Fairness)
	for _, u := range s.UserTime {
		iv(u)
	}
	for i := range s.PooledUser {
		n(s.PooledUser[i].N())
		f(s.PooledUser[i].Mean())
		f(s.PooledUser[i].Variance())
	}
	n(s.PooledOverall.N())
	f(s.PooledOverall.Mean())
	f(s.PooledOverall.Variance())
	for _, run := range s.Runs {
		n(run.Generated)
		n(run.Completed)
		f(run.EndTime)
		for i := range run.PerUser {
			n(run.PerUser[i].N())
			f(run.PerUser[i].Mean())
			f(run.PerUser[i].Variance())
		}
		for j := range run.PerComputer {
			n(run.PerComputer[j].N())
			f(run.PerComputer[j].Mean())
		}
		for j := range run.BusyTime {
			f(run.BusyTime[j])
		}
	}
	return h.Sum64()
}

// TestReplicateDeterministicAcrossWorkers pins the replication engine's
// determinism contract end to end: the pooled Summary of a full DES
// replication sweep is bitwise identical whether the replications run
// sequentially, on 4 workers, or on GOMAXPROCS workers. Any leak of worker
// identity, completion order or shared generator state into the results
// shows up here as a hash mismatch.
func TestReplicateDeterministicAcrossWorkers(t *testing.T) {
	cfg := goldenBase()
	const reps = 8

	ref, err := ReplicateWorkers(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryHash(t, ref)

	counts := []int{4, runtime.GOMAXPROCS(0), reps + 3}
	for _, workers := range counts {
		sum, err := ReplicateWorkers(cfg, reps, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := summaryHash(t, sum); got != want {
			t.Errorf("workers=%d: summary hash %#016x, want %#016x (pooled results not bitwise identical)",
				workers, got, want)
		}
	}

	// The default path (Replicate) must match too — it is ReplicateWorkers
	// with the GOMAXPROCS pool.
	sum, err := Replicate(cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryHash(t, sum); got != want {
		t.Errorf("Replicate default: summary hash %#016x, want %#016x", got, want)
	}
}
