package cluster

import (
	"strings"
	"testing"
)

// FuzzReadTrace throws arbitrary CSV-ish bytes at the trace parser: it must
// never panic, and every accepted trace must be causally ordered.
func FuzzReadTrace(f *testing.F) {
	f.Add("user,computer,arrival,start,completion\n0,0,1,2,3\n")
	f.Add("user,computer,arrival,start,completion\n")
	f.Add("")
	f.Add("a,b\n1,2\n")
	f.Add("user,computer,arrival,start,completion\n0,0,3,2,1\n")
	f.Add("user,computer,arrival,start,completion\n0,0,1e308,2e308,3e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Start < r.Arrival || r.Completion < r.Start {
				t.Fatalf("accepted non-causal record %+v", r)
			}
		}
		if len(recs) > 0 {
			if _, err := SummarizeTrace(recs); err != nil {
				t.Fatalf("summarize failed on accepted trace: %v", err)
			}
		}
	})
}
