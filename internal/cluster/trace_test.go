package cluster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nashlb/internal/game"
	"nashlb/internal/queueing"
	"nashlb/internal/stats"
)

func TestJobRecordDerived(t *testing.T) {
	r := JobRecord{Arrival: 1, Start: 3, Completion: 7}
	if r.ResponseTime() != 6 || r.WaitingTime() != 2 || r.ServiceTime() != 4 {
		t.Fatalf("derived times wrong: %v %v %v", r.ResponseTime(), r.WaitingTime(), r.ServiceTime())
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	cfg := singleQueueConfig(10, 6)
	cfg.Duration = 200
	cfg.OnJob = tw.Record
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != res.Completed {
		t.Fatalf("trace has %d jobs, run completed %d", tw.Count(), res.Completed)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != res.Completed {
		t.Fatalf("parsed %d records, want %d", len(recs), res.Completed)
	}
	// Trace mean response must equal the run's measured mean.
	stats, err := SummarizeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.MeanResponse-res.PerUser[0].Mean()) > 1e-9 {
		t.Fatalf("trace mean %v vs run mean %v", stats.MeanResponse, res.PerUser[0].Mean())
	}
	if stats.PerComputerN[0] != int(res.Completed) {
		t.Fatalf("per-computer counts wrong: %v", stats.PerComputerN)
	}
}

func TestTraceLittleLawCrossCheck(t *testing.T) {
	// Independent validation loop: L from the trace (throughput x mean
	// response) must match the M/M/1 closed form rho/(1-rho).
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	cfg := singleQueueConfig(10, 7)
	cfg.Duration = 6000
	cfg.Warmup = 500
	cfg.OnJob = tw.Record
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := SummarizeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.MM1{Mu: 10, Lambda: 7}.JobsInSystem()
	if math.Abs(stats.AvgInSystemL-want) > 0.15*want {
		t.Fatalf("trace L = %v, closed form %v", stats.AvgInSystemL, want)
	}
	// Per-job causality is guaranteed by the parser; spot-check waiting.
	if stats.MeanWaiting >= stats.MeanResponse {
		t.Fatal("waiting must be below response")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"fields":     "user,computer,arrival,start,completion\n1,2,3\n",
		"bad id":     "user,computer,arrival,start,completion\nx,0,0,0,0\n",
		"bad float":  "user,computer,arrival,start,completion\n0,0,a,0,0\n",
		"non-causal": "user,computer,arrival,start,completion\n0,0,5,4,6\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := SummarizeTrace(nil); err == nil {
		t.Error("empty summarize accepted")
	}
}

func TestResponseTimeDistributionIsExponential(t *testing.T) {
	// Beyond means: an M/M/1 sojourn time is exponential with rate
	// mu - lambda, so its quantiles have a closed form. Sample response
	// times with a reservoir through OnJob and compare.
	res := stats.NewReservoir(5000, 99)
	cfg := singleQueueConfig(10, 6)
	cfg.Duration = 6000
	cfg.Warmup = 500
	cfg.OnJob = func(r JobRecord) { res.Add(r.ResponseTime()) }
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	rate := 10.0 - 6.0
	for _, p := range []float64{0.5, 0.9, 0.99} {
		want := queueing.MM1{Mu: 10, Lambda: 6}.ResponseTimeQuantile(p)
		got := res.Quantile(p)
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("p=%v: simulated quantile %v, closed form %v (rate %v)", p, got, want, rate)
		}
	}
}

func TestMeasuredUtilizationMatchesRho(t *testing.T) {
	cfg := Config{
		Rates:    []float64{20, 10},
		Arrivals: []float64{9, 6},
		Profile:  game.Profile{{0.7, 0.3}, {0.5, 0.5}},
		Duration: 4000,
		Warmup:   400,
		Seed:     3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := &game.System{Rates: cfg.Rates, Arrivals: cfg.Arrivals}
	loads := sys.Loads(cfg.Profile)
	for j := range cfg.Rates {
		want := loads[j] / cfg.Rates[j]
		got := res.Utilization(j)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("computer %d: measured utilization %v, want %v", j, got, want)
		}
	}
}

func TestUtilizationZeroWindow(t *testing.T) {
	r := &RunResult{BusyTime: []float64{1}, EndTime: 5, Warmup: 5}
	if r.Utilization(0) != 0 {
		t.Fatal("zero window should report 0")
	}
}
