package cluster

import (
	"math"
	"testing"

	"nashlb/internal/game"
	"nashlb/internal/stats"
)

func perfConfig() Config {
	return Config{
		Rates:    []float64{10, 5, 2.5, 1},
		Arrivals: []float64{4, 3, 2},
		Profile: game.Profile{
			{0.55, 0.25, 0.15, 0.05},
			{0.50, 0.30, 0.15, 0.05},
			{0.45, 0.30, 0.20, 0.05},
		},
		Duration: 1e9, // stepped manually; never reaches the horizon
		Warmup:   20,
		Seed:     2002,
	}
}

// TestSimulateSteadyStateAllocs is the allocation-regression gate for the
// per-job path: once the rings, slab and heap have reached their high-water
// marks, stepping the simulation (arrivals, routing, service, departures,
// statistics) must not allocate at all.
func TestSimulateSteadyStateAllocs(t *testing.T) {
	cfg := perfConfig()
	r, err := newRunner(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ { // warm to steady state
		r.sim.Step()
	}
	if allocs := testing.AllocsPerRun(10_000, func() { r.sim.Step() }); allocs != 0 {
		t.Errorf("steady-state job path allocates %v per event, want 0", allocs)
	}
	if r.schedErr != nil {
		t.Fatal(r.schedErr)
	}
}

// TestSimulateSteadyStateAllocsJSQ covers the dynamic-dispatch variant,
// whose pick loop scans live queue lengths instead of sampling an alias row.
func TestSimulateSteadyStateAllocsJSQ(t *testing.T) {
	cfg := perfConfig()
	cfg.Dispatch = ShortestQueueDispatch
	r, err := newRunner(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		r.sim.Step()
	}
	if allocs := testing.AllocsPerRun(10_000, func() { r.sim.Step() }); allocs != 0 {
		t.Errorf("steady-state JSQ path allocates %v per event, want 0", allocs)
	}
}

// TestReplicatePooledMoments checks the Welford-merged pooled moments on
// Summary: the pooled accumulators must cover every measured job and agree
// with the job-weighted combination of the per-replication results.
func TestReplicatePooledMoments(t *testing.T) {
	cfg := perfConfig()
	cfg.Duration = 200
	sum, err := Replicate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.PooledOverall.N(); got != sum.Completed {
		t.Errorf("pooled overall N = %d, want %d completed jobs", got, sum.Completed)
	}
	for i := range sum.PooledUser {
		var n int64
		var weighted float64
		var ref stats.Welford
		for _, run := range sum.Runs {
			n += run.PerUser[i].N()
			weighted += run.PerUser[i].Mean() * float64(run.PerUser[i].N())
			ref.Merge(run.PerUser[i])
		}
		if got := sum.PooledUser[i].N(); got != n {
			t.Errorf("user %d pooled N = %d, want %d", i, got, n)
		}
		if got, want := sum.PooledUser[i].Mean(), weighted/float64(n); math.Abs(got-want) > 1e-9*want {
			t.Errorf("user %d pooled mean = %g, want job-weighted %g", i, got, want)
		}
		if got, want := sum.PooledUser[i].Variance(), ref.Variance(); math.Abs(got-want) > 1e-6*want {
			t.Errorf("user %d pooled variance = %g, want %g", i, got, want)
		}
	}
}

func TestJobRingFIFO(t *testing.T) {
	var q jobRing
	q.grow(4)
	for round := 0; round < 3; round++ { // wrap the ring repeatedly
		// Net growth of one element per iteration while popping, so the
		// head walks around the buffer across rounds.
		for i := 0; i < 100; i++ {
			q.push(job{user: int32(2 * i)})
			q.push(job{user: int32(2*i + 1)})
			if got := q.pop(); got.user != int32(i) {
				t.Fatalf("pop = %d, want %d", got.user, i)
			}
		}
		for i := 100; i < 200; i++ {
			if got := q.pop(); got.user != int32(i) {
				t.Fatalf("drain pop = %d, want %d", got.user, i)
			}
		}
		if q.len() != 0 {
			t.Fatalf("len = %d after drain", q.len())
		}
	}
}

func TestJobRingGrowPreservesOrder(t *testing.T) {
	var q jobRing
	q.grow(2)
	// Misalign head, then force growth with entries wrapped around the end.
	q.push(job{user: 100})
	q.pop()
	for i := 0; i < 50; i++ {
		q.push(job{user: int32(i)})
	}
	for i := 0; i < 50; i++ {
		if got := q.pop(); got.user != int32(i) {
			t.Fatalf("pop = %d, want %d (order lost across grow)", got.user, i)
		}
	}
}

// BenchmarkCoreClusterJobs measures steady-state simulation throughput on
// the Table-1-shaped system: one iteration is one discrete event (about
// half of which are job completions).
func BenchmarkCoreClusterJobs(b *testing.B) {
	cfg := perfConfig()
	r, err := newRunner(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		r.sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.sim.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCoreClusterSimulate measures a whole fixed-horizon run —
// setup, ~18k jobs, teardown — in jobs per second of wall time. The seed
// implementation ran this at ~1.25M jobs/sec with ~72k allocations per run.
func BenchmarkCoreClusterSimulate(b *testing.B) {
	cfg := perfConfig()
	cfg.Duration = 2000
	var jobs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		jobs = res.Completed
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}
