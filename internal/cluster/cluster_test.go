package cluster

import (
	"math"
	"testing"

	"nashlb/internal/game"
	"nashlb/internal/queueing"
	"nashlb/internal/stats"
)

func singleQueueConfig(mu, lambda float64) Config {
	return Config{
		Rates:    []float64{mu},
		Arrivals: []float64{lambda},
		Profile:  game.Profile{{1}},
		Duration: 4000,
		Warmup:   400,
		Seed:     42,
	}
}

func TestValidate(t *testing.T) {
	good := singleQueueConfig(10, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no computers", func(c *Config) { c.Rates = nil }},
		{"no users", func(c *Config) { c.Arrivals = nil }},
		{"zero rate", func(c *Config) { c.Rates[0] = 0 }},
		{"zero arrival", func(c *Config) { c.Arrivals[0] = 0 }},
		{"profile rows", func(c *Config) { c.Profile = game.Profile{{1}, {1}} }},
		{"profile sum", func(c *Config) { c.Profile = game.Profile{{0.5}} }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
	}
	for _, c := range cases {
		cfg := singleQueueConfig(10, 5)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestSimulateMatchesMM1ClosedForm(t *testing.T) {
	// The central substrate validation: the DES reproduces the M/M/1
	// sojourn time 1/(mu - lambda) that the whole paper is built on.
	for _, tc := range []struct{ mu, lambda float64 }{
		{10, 3},
		{10, 7},
		{50, 45},
	} {
		res, err := Simulate(singleQueueConfig(tc.mu, tc.lambda))
		if err != nil {
			t.Fatal(err)
		}
		want := queueing.MM1{Mu: tc.mu, Lambda: tc.lambda}.ResponseTime()
		got := res.PerUser[0].Mean()
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("mu=%v lambda=%v: simulated T=%v, closed form %v", tc.mu, tc.lambda, got, want)
		}
		if res.Completed < int64(0.8*tc.lambda*4000) {
			t.Errorf("completed only %d jobs", res.Completed)
		}
	}
}

func TestSimulateDeterministicGivenSeed(t *testing.T) {
	cfg := singleQueueConfig(10, 6)
	cfg.Duration = 200
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.PerUser[0].Mean() != b.PerUser[0].Mean() {
		t.Fatal("same seed produced different runs")
	}
	cfg.Seed = 43
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed == c.Completed && a.PerUser[0].Mean() == c.PerUser[0].Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSimulateMultiUserMultiComputer(t *testing.T) {
	// Two users on two computers with asymmetric strategies; compare the
	// per-user means against the analytic D_i.
	cfg := Config{
		Rates:    []float64{20, 10},
		Arrivals: []float64{8, 6},
		Profile: game.Profile{
			{0.8, 0.2},
			{0.5, 0.5},
		},
		Duration: 6000,
		Warmup:   500,
		Seed:     7,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := PredictedUserTimes(cfg)
	got := res.UserMeans()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.08*want[i] {
			t.Errorf("user %d: simulated %v, analytic %v", i, got[i], want[i])
		}
	}
	overall := PredictedOverallTime(cfg)
	if math.Abs(res.OverallMean()-overall) > 0.08*overall {
		t.Errorf("overall: simulated %v, analytic %v", res.OverallMean(), overall)
	}
}

func TestZeroFractionComputersReceiveNothing(t *testing.T) {
	cfg := Config{
		Rates:    []float64{10, 10},
		Arrivals: []float64{5},
		Profile:  game.Profile{{1, 0}},
		Duration: 500,
		Warmup:   0,
		Seed:     1,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerComputer[1].N() != 0 {
		t.Fatalf("computer with zero fraction completed %d jobs", res.PerComputer[1].N())
	}
	if res.PerComputer[0].N() == 0 {
		t.Fatal("computer with full fraction completed nothing")
	}
}

func TestWarmupExcludesEarlyJobs(t *testing.T) {
	cfg := singleQueueConfig(10, 5)
	cfg.Duration = 100
	cfg.Warmup = 1000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly 5 jobs/s * 100 s measured; far less than the 5*1100 total.
	if res.Generated > 700 || res.Generated < 300 {
		t.Fatalf("generated %d measured jobs, want ~500", res.Generated)
	}
}

func TestQueueSamplingMatchesMM1Occupancy(t *testing.T) {
	cfg := singleQueueConfig(10, 7)
	cfg.SampleEvery = 0.25
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueueLengths) != 1 || res.QueueLengths[0].N() == 0 {
		t.Fatal("no queue samples collected")
	}
	want := queueing.MM1{Mu: 10, Lambda: 7}.JobsInSystem() // rho/(1-rho) = 7/3
	got := res.QueueLengths[0].Mean()
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("sampled L = %v, closed form %v", got, want)
	}
}

func TestSaturatedComputerQueueGrows(t *testing.T) {
	// Overloaded station: response times must blow up relative to stable.
	cfg := Config{
		Rates:    []float64{5},
		Arrivals: []float64{10},
		Profile:  game.Profile{{1}},
		Duration: 300,
		Warmup:   0,
		Seed:     3,
		// sample to observe growth
		SampleEvery: 1,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~(10-5)*300 = 1500 jobs stuck by the end.
	if res.QueueLengths[0].Max() < 800 {
		t.Fatalf("overloaded queue max %v, expected ~1500", res.QueueLengths[0].Max())
	}
}

func TestReplicateSummaries(t *testing.T) {
	cfg := singleQueueConfig(10, 6)
	cfg.Duration = 8000
	sum, err := Replicate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replications != 5 || len(sum.Runs) != 5 {
		t.Fatalf("replication bookkeeping wrong: %+v", sum)
	}
	want := queueing.MM1{Mu: 10, Lambda: 6}.ResponseTime()
	if !sum.OverallTime.Contains(want) && math.Abs(sum.OverallTime.Mean-want) > 0.05*want {
		t.Errorf("CI %v..%v does not cover closed form %v", sum.OverallTime.Lo(), sum.OverallTime.Hi(), want)
	}
	// The paper's acceptance criterion.
	if sum.MaxRelativeError() > 0.05 {
		t.Errorf("relative error %v above 5%%", sum.MaxRelativeError())
	}
	// Single user: fairness is exactly 1 in every replication.
	if math.Abs(sum.Fairness.Mean-1) > 1e-12 {
		t.Errorf("fairness = %v, want 1", sum.Fairness.Mean)
	}
	// Replications must actually differ.
	if sum.Runs[0].Completed == sum.Runs[1].Completed &&
		sum.Runs[0].PerUser[0].Mean() == sum.Runs[1].PerUser[0].Mean() {
		t.Error("replications look identical; streams not independent")
	}
}

func TestReplicateErrors(t *testing.T) {
	cfg := singleQueueConfig(10, 6)
	if _, err := Replicate(cfg, 1); err == nil {
		t.Error("reps=1 accepted")
	}
	cfg.Duration = 0
	if _, err := Replicate(cfg, 3); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFairnessOfAsymmetricUsers(t *testing.T) {
	// One user on a fast computer, one on a slow: fairness < 1.
	cfg := Config{
		Rates:    []float64{50, 10},
		Arrivals: []float64{5, 5},
		Profile: game.Profile{
			{1, 0},
			{0, 1},
		},
		Duration: 3000,
		Warmup:   300,
		Seed:     11,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Fairness(); f > 0.9 {
		t.Errorf("fairness = %v, expected clearly below 1", f)
	}
	analytic := stats.JainFairness(PredictedUserTimes(cfg))
	if math.Abs(res.Fairness()-analytic) > 0.1 {
		t.Errorf("simulated fairness %v far from analytic %v", res.Fairness(), analytic)
	}
}

func TestArrivalModelValidation(t *testing.T) {
	cfg := singleQueueConfig(10, 5)
	cfg.Arrival = BurstyArrivals
	if err := cfg.Validate(); err == nil {
		t.Error("bursty without SCV accepted")
	}
	cfg.SCV = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("bursty with SCV=4 rejected: %v", err)
	}
	cfg.Arrival = ArrivalModel(99)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown arrival model accepted")
	}
	for m, want := range map[ArrivalModel]string{
		PoissonArrivals: "poisson", DeterministicArrivals: "deterministic",
		BurstyArrivals: "bursty", ArrivalModel(7): "ArrivalModel(7)",
	} {
		if m.String() != want {
			t.Errorf("String() = %q, want %q", m.String(), want)
		}
	}
}

func TestArrivalVariabilityOrdersResponseTimes(t *testing.T) {
	// At the same mean load, smoother arrivals beat Poisson, and bursty
	// arrivals lose to it — the classic variability ordering (D/M/1 <
	// M/M/1 < H2/M/1) that motivates checking the equilibrium's robustness
	// to non-Poisson traffic.
	base := singleQueueConfig(10, 7)
	base.Duration = 6000
	base.Warmup = 500

	run := func(model ArrivalModel, scv float64) float64 {
		cfg := base
		cfg.Arrival = model
		cfg.SCV = scv
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerUser[0].Mean()
	}
	det := run(DeterministicArrivals, 0)
	poisson := run(PoissonArrivals, 0)
	bursty := run(BurstyArrivals, 8)
	if !(det < poisson && poisson < bursty) {
		t.Fatalf("variability ordering violated: D=%v M=%v H2=%v", det, poisson, bursty)
	}
	// And Poisson still matches the M/M/1 closed form.
	want := queueing.MM1{Mu: 10, Lambda: 7}.ResponseTime()
	if math.Abs(poisson-want) > 0.08*want {
		t.Fatalf("poisson %v vs closed form %v", poisson, want)
	}
}

func TestServiceModelValidation(t *testing.T) {
	cfg := singleQueueConfig(10, 5)
	cfg.Service = BurstyService
	if err := cfg.Validate(); err == nil {
		t.Error("bursty service without SCV accepted")
	}
	cfg.ServiceSCV = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("bursty service with SCV=4 rejected: %v", err)
	}
	cfg.Service = ServiceModel(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown service model accepted")
	}
	for m, want := range map[ServiceModel]string{
		ExponentialService: "exponential", DeterministicService: "deterministic",
		BurstyService: "bursty", ServiceModel(3): "ServiceModel(3)",
	} {
		if m.String() != want {
			t.Errorf("String() = %q, want %q", m.String(), want)
		}
	}
}

func TestSimulateMatchesExactGIM1(t *testing.T) {
	// A single unsplit renewal stream into one exponential server is a
	// GI/M/1 queue with an exact closed form — the strongest validation
	// of the non-Poisson arrival models.
	cases := []struct {
		name    string
		arrival ArrivalModel
		scv     float64
		lst     func(float64) float64
	}{
		{"deterministic", DeterministicArrivals, 0, queueing.DeterministicLST(7)},
		{"poisson", PoissonArrivals, 1, queueing.ExpLST(7)},
		{"bursty-4", BurstyArrivals, 4, queueing.HyperExpLST(7, 4)},
	}
	for _, c := range cases {
		cfg := singleQueueConfig(10, 7)
		cfg.Duration = 8000
		cfg.Warmup = 500
		cfg.Arrival = c.arrival
		cfg.SCV = c.scv
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (queueing.GIM1{Mu: 10, Lambda: 7, LST: c.lst}).ResponseTime()
		if err != nil {
			t.Fatal(err)
		}
		got := res.PerUser[0].Mean()
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("%s: simulated T %v, exact GI/M/1 %v", c.name, got, want)
		}
	}
}

func TestSimulateMatchesPollaczekKhinchine(t *testing.T) {
	// With non-exponential service the computer is an M/G/1 station; the
	// simulated sojourn time must match the P-K formula.
	for _, tc := range []struct {
		service ServiceModel
		scv     float64
	}{
		{DeterministicService, 0},
		{ExponentialService, 1},
		{BurstyService, 4},
	} {
		cfg := singleQueueConfig(10, 7)
		cfg.Duration = 8000
		cfg.Warmup = 500
		cfg.Service = tc.service
		cfg.ServiceSCV = tc.scv
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := queueing.MG1{Mu: 10, SCV: tc.scv, Lambda: 7}.ResponseTime()
		got := res.PerUser[0].Mean()
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("%s (scv %v): simulated T %v, P-K %v", tc.service, tc.scv, got, want)
		}
	}
}

func TestBatchMeansAgreesWithReplications(t *testing.T) {
	// Two standard output-analysis methods on the same model must agree:
	// the paper's independent replications, and the method of batch means
	// over one long run. Both CIs should contain the analytic value.
	want := queueing.MM1{Mu: 10, Lambda: 7}.ResponseTime()

	repCfg := singleQueueConfig(10, 7)
	repCfg.Duration = 4000
	repSum, err := Replicate(repCfg, 5)
	if err != nil {
		t.Fatal(err)
	}

	var series []float64
	longCfg := singleQueueConfig(10, 7)
	longCfg.Duration = 20000
	longCfg.OnJob = func(r JobRecord) { series = append(series, r.ResponseTime()) }
	if _, err := Simulate(longCfg); err != nil {
		t.Fatal(err)
	}
	bm, err := stats.BatchMeansCI95(series, 20)
	if err != nil {
		t.Fatal(err)
	}

	for name, iv := range map[string]stats.Interval{"replications": repSum.OverallTime, "batch means": bm} {
		if !iv.Contains(want) && math.Abs(iv.Mean-want) > 0.05*want {
			t.Errorf("%s CI %v..%v misses analytic %v", name, iv.Lo(), iv.Hi(), want)
		}
	}
	// The point estimates must agree with each other too.
	if math.Abs(repSum.OverallTime.Mean-bm.Mean) > 0.1*want {
		t.Errorf("methods disagree: replications %v vs batch means %v", repSum.OverallTime.Mean, bm.Mean)
	}
}

func TestDispatchPolicyValidationAndNames(t *testing.T) {
	cfg := singleQueueConfig(10, 5)
	cfg.Dispatch = DispatchPolicy(77)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown dispatch accepted")
	}
	for d, want := range map[DispatchPolicy]string{
		ProbabilisticDispatch: "probabilistic", ShortestQueueDispatch: "jsq",
		ShortestDelayDispatch: "sed", DispatchPolicy(9): "DispatchPolicy(9)",
	} {
		if d.String() != want {
			t.Errorf("String = %q, want %q", d.String(), want)
		}
	}
}

func TestShortestDelayBeatsStaticDispatch(t *testing.T) {
	// SED uses instantaneous global queue state per job, which no static
	// scheme can: its measured mean response time must beat the static
	// NASH-equivalent probabilistic split on the same workload.
	rates := []float64{50, 20, 10}
	arrivals := []float64{20, 16}
	prof := game.Profile{
		{0.7, 0.2, 0.1},
		{0.7, 0.2, 0.1},
	}
	base := Config{
		Rates:    rates,
		Arrivals: arrivals,
		Profile:  prof,
		Duration: 4000,
		Warmup:   400,
		Seed:     31,
	}
	static, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	sed := base
	sed.Dispatch = ShortestDelayDispatch
	dynamic, err := Simulate(sed)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.OverallMean() >= static.OverallMean() {
		t.Errorf("SED %v not below static %v", dynamic.OverallMean(), static.OverallMean())
	}
	// JSQ ignores speeds; it must still run to completion feasibly.
	jsq := base
	jsq.Dispatch = ShortestQueueDispatch
	jres, err := Simulate(jsq)
	if err != nil {
		t.Fatal(err)
	}
	if jres.Completed == 0 || math.IsInf(jres.OverallMean(), 0) {
		t.Error("JSQ run degenerate")
	}
	// On a heterogeneous system, speed-aware SED beats speed-blind JSQ.
	if dynamic.OverallMean() >= jres.OverallMean() {
		t.Errorf("SED %v not below JSQ %v on heterogeneous system", dynamic.OverallMean(), jres.OverallMean())
	}
}

func BenchmarkSimulateMM1(b *testing.B) {
	cfg := singleQueueConfig(10, 7)
	cfg.Duration = 100
	cfg.Warmup = 10
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
