package cluster

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// TraceWriter records JobRecords as CSV, one row per completed job:
// user, computer, arrival, start, completion. Plug its Record method into
// Config.OnJob to capture a run's full job trace for offline analysis.
type TraceWriter struct {
	w   *csv.Writer
	err error
	n   int64
}

// NewTraceWriter returns a writer emitting the CSV header immediately.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: csv.NewWriter(w)}
	tw.err = tw.w.Write([]string{"user", "computer", "arrival", "start", "completion"})
	return tw
}

// Record appends one job; errors are sticky and reported by Flush.
func (t *TraceWriter) Record(r JobRecord) {
	if t.err != nil {
		return
	}
	t.err = t.w.Write([]string{
		strconv.Itoa(r.User),
		strconv.Itoa(r.Computer),
		strconv.FormatFloat(r.Arrival, 'g', -1, 64),
		strconv.FormatFloat(r.Start, 'g', -1, 64),
		strconv.FormatFloat(r.Completion, 'g', -1, 64),
	})
	t.n++
}

// Count returns the number of jobs recorded.
func (t *TraceWriter) Count() int64 { return t.n }

// Flush completes the trace and returns the first error encountered.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	t.w.Flush()
	return t.w.Error()
}

// ReadTrace parses a CSV trace produced by TraceWriter.
func ReadTrace(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("cluster: trace read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	out := make([]JobRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("cluster: trace row %d has %d fields", i+2, len(row))
		}
		var rec JobRecord
		var errU, errC error
		rec.User, errU = strconv.Atoi(row[0])
		rec.Computer, errC = strconv.Atoi(row[1])
		if errU != nil || errC != nil {
			return nil, fmt.Errorf("cluster: trace row %d: bad ids %q %q", i+2, row[0], row[1])
		}
		vals := make([]float64, 3)
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(row[2+k], 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: trace row %d: %w", i+2, err)
			}
			vals[k] = v
		}
		rec.Arrival, rec.Start, rec.Completion = vals[0], vals[1], vals[2]
		if rec.Start < rec.Arrival || rec.Completion < rec.Start {
			return nil, fmt.Errorf("cluster: trace row %d: non-causal timestamps", i+2)
		}
		out = append(out, rec)
	}
	return out, nil
}

// TraceStats summarizes a trace: per-user mean response times and the
// time-average number of jobs in the system over the span of the trace,
// enabling an independent Little's-law cross-check of the simulator.
type TraceStats struct {
	Jobs         int
	MeanResponse float64
	MeanWaiting  float64
	Span         float64 // last completion - first arrival
	ThroughputHz float64 // jobs per second over the span
	AvgInSystemL float64 // by Little's law: throughput * mean response
	PerUserMeans map[int]float64
	PerComputerN map[int]int
}

// SummarizeTrace computes TraceStats; it requires a non-empty trace.
func SummarizeTrace(recs []JobRecord) (*TraceStats, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("cluster: cannot summarize empty trace")
	}
	st := &TraceStats{
		Jobs:         len(recs),
		PerUserMeans: map[int]float64{},
		PerComputerN: map[int]int{},
	}
	first, last := recs[0].Arrival, recs[0].Completion
	perUserSum := map[int]float64{}
	perUserN := map[int]int{}
	var respSum, waitSum float64
	for _, r := range recs {
		if r.Arrival < first {
			first = r.Arrival
		}
		if r.Completion > last {
			last = r.Completion
		}
		respSum += r.ResponseTime()
		waitSum += r.WaitingTime()
		perUserSum[r.User] += r.ResponseTime()
		perUserN[r.User]++
		st.PerComputerN[r.Computer]++
	}
	st.MeanResponse = respSum / float64(len(recs))
	st.MeanWaiting = waitSum / float64(len(recs))
	st.Span = last - first
	if st.Span > 0 {
		st.ThroughputHz = float64(len(recs)) / st.Span
	}
	st.AvgInSystemL = st.ThroughputHz * st.MeanResponse
	for u, sum := range perUserSum {
		st.PerUserMeans[u] = sum / float64(perUserN[u])
	}
	return st, nil
}
