package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"nashlb/internal/game"
)

// The golden values below were captured from the seed implementation (the
// pointer-heap des kernel and the closure-per-job simulator, commit
// 9a563fe) before the zero-allocation rewrite. They pin the rewritten
// kernel to the seed's exact behavior: the same random-stream draw order,
// the same event execution order (via an FNV-1a hash over every completed
// job record), and statistics identical to 1e-12. Any kernel change that
// reorders ties, perturbs a draw, or drops an event shows up here.

func goldenBase() Config {
	return Config{
		Rates:    []float64{10, 5, 2.5, 1},
		Arrivals: []float64{4, 3, 2},
		Profile: game.Profile{
			{0.55, 0.25, 0.15, 0.05},
			{0.50, 0.30, 0.15, 0.05},
			{0.45, 0.30, 0.20, 0.05},
		},
		Duration: 200,
		Warmup:   20,
		Seed:     2002,
	}
}

type goldenCase struct {
	name       string
	configure  func(*Config)
	trace      uint64
	generated  int64
	completed  int64
	rebalances int
	userMeans  []float64
	userN      []int64
	compN      []int64
	busy       []float64
	qlenMeans  []float64
}

func goldenCases() []goldenCase {
	profile := goldenBase().Profile
	alt := game.Profile{
		{0.60, 0.20, 0.15, 0.05},
		{0.50, 0.30, 0.15, 0.05},
		{0.40, 0.35, 0.20, 0.05},
	}
	return []goldenCase{
		{
			name:      "plain",
			configure: func(c *Config) {},
			trace:     0x7542d83c54402b3b,
			generated: 1809, completed: 1807,
			userMeans: []float64{0.50543828286163495, 0.54032586485378042, 0.59003065359657347},
			userN:     []int64{810, 601, 396},
			compN:     []int64{878, 512, 325, 92},
			busy:      []float64{86.585042159250349, 105.76543881532861, 142.70583618165546, 86.038823291255682},
		},
		{
			name: "rebalance+sample",
			configure: func(c *Config) {
				c.SampleEvery = 0.5
				c.Rebalance = &RebalancePolicy{
					Every: 25,
					Do: func(now float64, queueLens []int, current game.Profile) game.Profile {
						if int(now/25)%2 == 1 {
							return alt
						}
						return profile
					},
				}
			},
			trace:     0x693617cc97e162df,
			generated: 1809, completed: 1808, rebalances: 8,
			userMeans: []float64{0.47007379605899741, 0.53427787283532047, 0.56149380932120851},
			userN:     []int64{810, 601, 397},
			compN:     []int64{906, 485, 325, 92},
			busy:      []float64{89.248642572050983, 101.18419719433466, 142.70583618165546, 86.038823291255682},
			qlenMeans: []float64{0.79551122194513746, 0.8728179551122206, 1.9675810473815465, 0.99750623441396447},
		},
		{
			name: "bursty",
			configure: func(c *Config) {
				c.Arrival = BurstyArrivals
				c.SCV = 4
				c.Service = BurstyService
				c.ServiceSCV = 4
			},
			trace:     0x436c18891c8dc26e,
			generated: 1732, completed: 1711,
			userMeans: []float64{1.0369982992353644, 0.89946767306518938, 1.2407747399305049},
			userN:     []int64{760, 530, 421},
			compN:     []int64{835, 489, 299, 88},
			busy:      []float64{81.734183317346364, 92.689219862686443, 136.95429235709352, 92.455885702226794},
		},
		{
			name:      "sed",
			configure: func(c *Config) { c.Dispatch = ShortestDelayDispatch },
			trace:     0x7bd7440c4c669552,
			generated: 1809, completed: 1805,
			userMeans: []float64{0.2284487731718515, 0.22217842884411512, 0.22497141822148825},
			userN:     []int64{809, 600, 396},
			compN:     []int64{1418, 353, 34, 0},
			busy:      []float64{139.6097657696867, 74.879461409037816, 13.432518400687446, 0},
		},
	}
}

// TestGoldenDeterminismVsSeedKernel replays fixed-seed runs and compares
// them against values captured from the seed implementation.
func TestGoldenDeterminismVsSeedKernel(t *testing.T) {
	const tol = 1e-12
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goldenBase()
			tc.configure(&cfg)
			h := fnv.New64a()
			cfg.OnJob = func(r JobRecord) {
				fmt.Fprintf(h, "%d|%d|%.12e|%.12e|%.12e\n", r.User, r.Computer, r.Arrival, r.Start, r.Completion)
			}
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := h.Sum64(); got != tc.trace {
				t.Errorf("job-completion trace hash %#016x, want %#016x (event order diverged from seed kernel)", got, tc.trace)
			}
			if res.Generated != tc.generated || res.Completed != tc.completed {
				t.Errorf("generated/completed = %d/%d, want %d/%d", res.Generated, res.Completed, tc.generated, tc.completed)
			}
			if res.Rebalances != tc.rebalances {
				t.Errorf("rebalances = %d, want %d", res.Rebalances, tc.rebalances)
			}
			if res.EndTime != 220 {
				t.Errorf("end time = %v, want 220", res.EndTime)
			}
			for i, want := range tc.userMeans {
				if got := res.PerUser[i].Mean(); math.Abs(got-want) > tol {
					t.Errorf("user %d mean = %.17g, want %.17g", i, got, want)
				}
				if got := res.PerUser[i].N(); got != tc.userN[i] {
					t.Errorf("user %d count = %d, want %d", i, got, tc.userN[i])
				}
			}
			for j, want := range tc.compN {
				if got := res.PerComputer[j].N(); got != want {
					t.Errorf("computer %d count = %d, want %d", j, got, want)
				}
				if got := res.BusyTime[j]; math.Abs(got-tc.busy[j]) > tol {
					t.Errorf("computer %d busy = %.17g, want %.17g", j, got, tc.busy[j])
				}
			}
			for j, want := range tc.qlenMeans {
				if got := res.QueueLengths[j].Mean(); math.Abs(got-want) > tol {
					t.Errorf("queue %d mean = %.17g, want %.17g", j, got, want)
				}
			}
		})
	}
}
