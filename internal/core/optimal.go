// Package core implements the paper's primary contribution: the OPTIMAL
// best-response algorithm (Theorems 2.1 and 2.2) and the NASH distributed
// greedy best-reply algorithm (Section 3) that computes the Nash equilibrium
// of the noncooperative load-balancing game defined in internal/game.
package core

import (
	"errors"
	"fmt"
	"math"

	"nashlb/internal/game"
	"nashlb/internal/numeric"
)

// ErrInsufficientCapacity is returned when a user's arrival rate is not
// strictly below the total available processing rate it sees, so its
// best-response subproblem has no feasible point.
var ErrInsufficientCapacity = errors.New("core: arrival rate >= total available processing rate")

// ErrBadArrival is returned for non-positive or non-finite arrival rates.
var ErrBadArrival = errors.New("core: arrival rate must be positive and finite")

// Optimal solves user i's best-response optimization problem OPT_i
// (Theorem 2.1 / algorithm OPTIMAL, Theorem 2.2): given the available
// processing rates a_j = mu_j^i seen by the user and the user's total
// arrival rate lambda = phi_i, it returns the strategy s minimizing
//
//	D_i(s) = sum_j s_j / (a_j - s_j*lambda)
//
// subject to s_j >= 0 and sum_j s_j = 1.
//
// The solution has water-filling form: with computers sorted by decreasing
// available rate and c the largest prefix kept active,
//
//	t = (sum_{j<=c} a_j - lambda) / (sum_{j<=c} sqrt(a_j))
//	s_j = (a_j - t*sqrt(a_j)) / lambda   for j <= c,   s_j = 0 otherwise,
//
// where c is the minimum prefix such that t < sqrt(a_c) (the paper's
// index-c_i condition). Computers whose available rate is non-positive
// (saturated by the other users) are treated as unusable and receive zero.
//
// The returned strategy is expressed in the original computer order.
// Complexity is O(n log n) from the sort.
func Optimal(available []float64, arrival float64) (game.Strategy, error) {
	n := len(available)
	if n == 0 {
		return nil, errors.New("core: no computers")
	}
	if !(arrival > 0) || math.IsInf(arrival, 0) || math.IsNaN(arrival) {
		return nil, fmt.Errorf("%w: got %g", ErrBadArrival, arrival)
	}
	// Usable computers: strictly positive available rate.
	usable := make([]int, 0, n)
	var capSum numeric.Accumulator
	for j, a := range available {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("core: invalid available rate a[%d]=%g", j, a)
		}
		if a > 0 {
			usable = append(usable, j)
			capSum.Add(a)
		}
	}
	if len(usable) == 0 || arrival >= capSum.Value() {
		return nil, fmt.Errorf("%w: lambda=%g, available=%g", ErrInsufficientCapacity, arrival, capSum.Value())
	}

	// Step 1: sort usable computers in decreasing order of available rate.
	rates := make([]float64, len(usable))
	for k, j := range usable {
		rates[k] = available[j]
	}
	perm := numeric.ArgsortDescending(rates)
	sorted := numeric.Permute(rates, perm)

	// Steps 2–3: shrink the active prefix until t < sqrt(a_c).
	sqrts := make([]float64, len(sorted))
	for k, a := range sorted {
		sqrts[k] = math.Sqrt(a)
	}
	c := len(sorted)
	t := waterLevel(sorted[:c], sqrts[:c], arrival)
	for c > 1 && t >= sqrts[c-1] {
		c--
		t = waterLevel(sorted[:c], sqrts[:c], arrival)
	}

	// Step 4: assign fractions.
	s := make(game.Strategy, n)
	if c == 1 {
		// Single active computer: the whole flow goes there; computing
		// (a - t*sqrt(a))/lambda would lose the answer to cancellation
		// when a >> lambda.
		s[usable[perm[0]]] = 1
		return s, nil
	}
	var total numeric.Accumulator
	for k := 0; k < c; k++ {
		frac := (sorted[k] - t*sqrts[k]) / arrival
		frac = numeric.ClampNonNegative(frac, 1e-9)
		if frac < 0 {
			return nil, fmt.Errorf("core: internal error: negative fraction %g at sorted index %d", frac, k)
		}
		orig := usable[perm[k]]
		s[orig] = frac
		total.Add(frac)
	}
	tv := total.Value()
	if !(tv > 0) || math.IsInf(tv, 0) || math.IsNaN(tv) {
		// Catastrophic cancellation (active rates spanning hundreds of
		// orders of magnitude): fall back to the dominant computer, the
		// exact limit of the water-filling solution in that regime.
		for j := range s {
			s[j] = 0
		}
		s[usable[perm[0]]] = 1
		return s, nil
	}
	// Rounding cleanup: renormalize the active set so conservation holds to
	// machine precision, preserving the relative split.
	if tv != 1 {
		for j := range s {
			if s[j] > 0 {
				s[j] /= tv
			}
		}
	}
	return s, nil
}

// waterLevel returns t = (sum(a) - lambda) / sum(sqrt(a)) over the given
// active prefix.
func waterLevel(rates, sqrts []float64, arrival float64) float64 {
	num := numeric.Sum(rates) - arrival
	den := numeric.Sum(sqrts)
	return num / den
}

// ResponseTime evaluates the user's expected response time
// D(s) = sum_j s_j/(a_j - s_j*lambda) for a strategy against available
// rates; +Inf if any used computer would be saturated.
func ResponseTime(available []float64, arrival float64, s game.Strategy) float64 {
	var acc numeric.Accumulator
	for j := range s {
		if s[j] == 0 {
			continue
		}
		rem := available[j] - s[j]*arrival
		if rem <= 0 {
			return math.Inf(1)
		}
		acc.Add(s[j] / rem)
	}
	return acc.Value()
}

// KKTResidual measures how far strategy s is from satisfying the first-order
// Kuhn–Tucker optimality conditions of the best-response subproblem. The
// marginal cost of computer j at s is
//
//	g_j(s) = a_j / (a_j - s_j*lambda)^2,
//
// and s is optimal iff there is an alpha with g_j = alpha on the support and
// g_j >= alpha off it. The residual returned is the maximum of (a) the
// spread of g_j over the support relative to alpha and (b) the worst
// relative violation alpha - g_j over zero entries. A residual near zero
// certifies optimality; it is the test hook for Theorem 2.2.
func KKTResidual(available []float64, arrival float64, s game.Strategy) float64 {
	alpha := math.Inf(1)
	var maxOn float64
	// alpha = min marginal over support; spread check over support.
	for j := range s {
		if s[j] <= 0 {
			continue
		}
		rem := available[j] - s[j]*arrival
		if rem <= 0 {
			return math.Inf(1)
		}
		g := available[j] / (rem * rem)
		if g < alpha {
			alpha = g
		}
		if g > maxOn {
			maxOn = g
		}
	}
	if math.IsInf(alpha, 1) {
		// Empty support: infinitely infeasible.
		return math.Inf(1)
	}
	res := (maxOn - alpha) / alpha
	for j := range s {
		if s[j] > 0 {
			continue
		}
		if available[j] <= 0 {
			continue // unusable computer, no KKT constraint
		}
		g := 1 / available[j] // marginal at s_j = 0
		if v := (alpha - g) / alpha; v > res {
			res = v
		}
	}
	return res
}

var _ game.BestResponse = Optimal
