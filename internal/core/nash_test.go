package core

import (
	"errors"
	"math"
	"testing"

	"nashlb/internal/game"
	"nashlb/internal/rng"
)

// paperSystem builds the Table-1 configuration of the paper: 16 computers
// (rates 10,20,50,100 with counts 6,5,3,2) and 10 users with a skewed
// traffic mix, scaled to the requested utilization.
func paperSystem(t testing.TB, rho float64) *game.System {
	t.Helper()
	rates := make([]float64, 0, 16)
	for i := 0; i < 6; i++ {
		rates = append(rates, 10)
	}
	for i := 0; i < 5; i++ {
		rates = append(rates, 20)
	}
	for i := 0; i < 3; i++ {
		rates = append(rates, 50)
	}
	for i := 0; i < 2; i++ {
		rates = append(rates, 100)
	}
	mix := []float64{0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.05, 0.05, 0.04}
	arrivals := make([]float64, len(mix))
	total := 510.0 * rho
	for i, q := range mix {
		arrivals[i] = q * total
	}
	sys, err := game.NewSystem(rates, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSolveReachesNashEquilibrium(t *testing.T) {
	for _, rho := range []float64{0.1, 0.4, 0.6, 0.9} {
		sys := paperSystem(t, rho)
		res, err := Solve(sys, Options{})
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		if !res.Converged {
			t.Fatalf("rho=%v: not converged", rho)
		}
		if err := sys.CheckProfile(res.Profile); err != nil {
			t.Fatalf("rho=%v: equilibrium profile infeasible: %v", rho, err)
		}
		ok, impr, err := VerifyEquilibrium(sys, res.Profile, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("rho=%v: not an equilibrium (best deviation improves %g)", rho, impr)
		}
	}
}

func TestSolveInitializationsAgree(t *testing.T) {
	sys := paperSystem(t, 0.6)
	r0, err := Solve(sys, Options{Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Solve(sys, Options{Init: InitProportional})
	if err != nil {
		t.Fatal(err)
	}
	// Same equilibrium (response times agree) regardless of initialization.
	for i := range r0.UserTimes {
		if math.Abs(r0.UserTimes[i]-rp.UserTimes[i]) > 1e-6*(1+r0.UserTimes[i]) {
			t.Fatalf("user %d times differ: %v vs %v", i, r0.UserTimes[i], rp.UserTimes[i])
		}
	}
	if math.Abs(r0.OverallTime-rp.OverallTime) > 1e-8 {
		t.Fatalf("overall times differ: %v vs %v", r0.OverallTime, rp.OverallTime)
	}
}

func TestProportionalInitConvergesFaster(t *testing.T) {
	// The paper's convergence claim (Figures 2-3): NASH_P needs fewer
	// iterations than NASH_0, and the gap grows with the number of users.
	// In our Gauss–Seidel round-robin dynamics the advantage is a
	// consistent handful of rounds rather than the paper's "more than
	// half" (see EXPERIMENTS.md); the invariant tested here is the
	// direction: NASH_P never loses, and strictly wins for larger games.
	rates := paperSystem(t, 0.6).Rates
	for _, m := range []int{8, 16, 24, 32} {
		arr := make([]float64, m)
		for i := range arr {
			arr[i] = 510 * 0.6 / float64(m)
		}
		sys, err := game.NewSystem(rates, arr)
		if err != nil {
			t.Fatal(err)
		}
		r0, err := Solve(sys, Options{Init: InitZero, Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Solve(sys, Options{Init: InitProportional, Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if rp.Rounds >= r0.Rounds {
			t.Fatalf("m=%d: NASH_P (%d rounds) should beat NASH_0 (%d rounds)", m, rp.Rounds, r0.Rounds)
		}
		// First-round norm must reflect the better start too.
		if rp.Norms[1] >= r0.Norms[1] {
			t.Errorf("m=%d: NASH_P round-2 norm %v not below NASH_0 %v", m, rp.Norms[1], r0.Norms[1])
		}
	}
}

func TestSolveSingleUserMatchesGlobalWaterFilling(t *testing.T) {
	// With one user the Nash equilibrium is that user's OPTIMAL against the
	// raw rates — which is the global optimum of the single-class problem.
	sys, err := game.NewSystem([]float64{100, 40, 10}, []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Optimal(sys.Rates, 60)
	if err != nil {
		t.Fatal(err)
	}
	for j := range direct {
		if math.Abs(res.Profile[0][j]-direct[j]) > 1e-9 {
			t.Fatalf("single-user Nash %v != OPTIMAL %v", res.Profile[0], direct)
		}
	}
	if res.Rounds > 2 {
		t.Fatalf("single user should converge in <=2 rounds, took %d", res.Rounds)
	}
}

func TestSolveSymmetricUsersGetEqualTimes(t *testing.T) {
	// Identical users must see identical response times at equilibrium.
	sys, err := game.NewSystem([]float64{30, 20, 10}, []float64{12, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.UserTimes); i++ {
		if math.Abs(res.UserTimes[i]-res.UserTimes[0]) > 1e-7 {
			t.Fatalf("symmetric users differ: %v", res.UserTimes)
		}
	}
}

func TestSolveNormsDecreaseOverall(t *testing.T) {
	sys := paperSystem(t, 0.6)
	res, err := Solve(sys, Options{Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Norms) < 2 {
		t.Fatalf("expected multiple rounds, got %d", len(res.Norms))
	}
	first, last := res.Norms[0], res.Norms[len(res.Norms)-1]
	if last >= first {
		t.Fatalf("norm did not decrease: first=%v last=%v", first, last)
	}
	// Tail must be geometric-ish: final norm below epsilon.
	if last > DefaultEpsilon {
		t.Fatalf("final norm %v above epsilon", last)
	}
}

func TestSolveOnRoundCallback(t *testing.T) {
	sys := paperSystem(t, 0.5)
	var rounds []int
	res, err := Solve(sys, Options{OnRound: func(rs RoundStat) {
		rounds = append(rounds, rs.Round)
		if rs.Norm < 0 || rs.MaxShift < 0 {
			t.Errorf("negative stats: %+v", rs)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != res.Rounds {
		t.Fatalf("callback fired %d times, want %d", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("rounds not sequential: %v", rounds)
		}
	}
}

func TestSolveNotConverged(t *testing.T) {
	sys := paperSystem(t, 0.9)
	res, err := Solve(sys, Options{MaxRounds: 1, Epsilon: 1e-12})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if res == nil || res.Converged {
		t.Fatal("partial result should be returned, unconverged")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestSolveRejectsInvalidSystem(t *testing.T) {
	bad := &game.System{Rates: []float64{1}, Arrivals: []float64{2}}
	if _, err := Solve(bad, Options{}); err == nil {
		t.Fatal("overloaded system accepted")
	}
}

func TestSolveHighUtilizationStressAndStability(t *testing.T) {
	sys := paperSystem(t, 0.98)
	res, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loads := sys.Loads(res.Profile)
	for j, l := range loads {
		if l >= sys.Rates[j] {
			t.Fatalf("computer %d saturated at equilibrium: %v >= %v", j, l, sys.Rates[j])
		}
	}
}

func TestSolveRandomSystemsAlwaysEquilibrate(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(10)
		m := 1 + r.Intn(8)
		rates := make([]float64, n)
		var capTotal float64
		for j := range rates {
			rates[j] = r.Uniform(1, 100)
			capTotal += rates[j]
		}
		arr := make([]float64, m)
		budget := r.Uniform(0.1, 0.9) * capTotal
		var sum float64
		w := make([]float64, m)
		for i := range w {
			w[i] = r.Exp(1)
			sum += w[i]
		}
		for i := range arr {
			arr[i] = budget * w[i] / sum
		}
		sys, err := game.NewSystem(rates, arr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(sys, Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): %v", trial, n, m, err)
		}
		ok, impr, err := VerifyEquilibrium(sys, res.Profile, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: not an equilibrium (improvement %g)", trial, impr)
		}
	}
}

func TestInitString(t *testing.T) {
	if InitZero.String() != "NASH_0" || InitProportional.String() != "NASH_P" {
		t.Fatal("Init names wrong")
	}
	if Init(42).String() == "" {
		t.Fatal("unknown init should still stringify")
	}
}

func TestInitialProfile(t *testing.T) {
	sys := paperSystem(t, 0.5)
	z := InitialProfile(sys, InitZero)
	for i := range z {
		for j := range z[i] {
			if z[i][j] != 0 {
				t.Fatal("InitZero profile not zero")
			}
		}
	}
	p := InitialProfile(sys, InitProportional)
	if err := sys.CheckProfile(p); err != nil {
		t.Fatalf("proportional init infeasible: %v", err)
	}
}

func BenchmarkSolveNash0Table1(b *testing.B) {
	sys := paperSystem(b, 0.6)
	for i := 0; i < b.N; i++ {
		if _, err := Solve(sys, Options{Init: InitZero}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNashPTable1(b *testing.B) {
	sys := paperSystem(b, 0.6)
	for i := 0; i < b.N; i++ {
		if _, err := Solve(sys, Options{Init: InitProportional}); err != nil {
			b.Fatal(err)
		}
	}
}
