package core

import (
	"errors"
	"fmt"
	"math"

	"nashlb/internal/game"
)

// Init selects the initialization of the NASH best-reply iteration.
type Init int

const (
	// InitZero is the paper's NASH_0 variant: every strategy starts at the
	// zero vector (users enter the game one by one during round 1).
	InitZero Init = iota
	// InitProportional is the paper's NASH_P variant: every user starts
	// from the proportional allocation s_ij = mu_j / sum_k mu_k, which is
	// close to the equilibrium and roughly halves the iteration count.
	InitProportional
)

// String returns the paper's name for the initialization.
func (in Init) String() string {
	switch in {
	case InitZero:
		return "NASH_0"
	case InitProportional:
		return "NASH_P"
	default:
		return fmt.Sprintf("Init(%d)", int(in))
	}
}

// DefaultEpsilon is the default acceptance tolerance for the per-round norm
// sum_i |D_i^(l) - D_i^(l-1)|.
const DefaultEpsilon = 1e-9

// DefaultMaxRounds bounds the number of best-reply rounds. Convergence for
// more than two users is an open problem in the paper; in practice the
// iteration converges geometrically, and hitting this bound signals a
// mis-configured system rather than slow progress.
const DefaultMaxRounds = 10000

// ErrNotConverged is returned when the iteration exhausts its round budget
// before the norm drops below epsilon.
var ErrNotConverged = errors.New("core: NASH iteration did not converge")

// Options configures the NASH solver.
type Options struct {
	// Init selects NASH_0 or NASH_P (default NASH_0, the paper's baseline).
	Init Init
	// Epsilon is the acceptance tolerance on the per-round norm
	// (DefaultEpsilon when zero).
	Epsilon float64
	// MaxRounds bounds the iteration (DefaultMaxRounds when zero).
	MaxRounds int
	// OnRound, when non-nil, is invoked after every completed round with
	// that round's statistics; it drives the convergence plots (Figure 2).
	OnRound func(RoundStat)
}

// RoundStat captures one completed round of the best-reply iteration.
type RoundStat struct {
	// Round is the 1-based round index (one round = every user updates
	// once, in round-robin order, as in the paper's token protocol).
	Round int
	// Norm is sum_i |D_i after update - D_i before update| accumulated
	// over the round, the quantity plotted in Figure 2.
	Norm float64
	// MaxShift is the largest single-user strategy change (L1) in the
	// round; a secondary convergence diagnostic.
	MaxShift float64
}

// Result is the outcome of the NASH solver.
type Result struct {
	// Profile is the computed strategy profile (the Nash equilibrium when
	// Converged is true).
	Profile game.Profile
	// Rounds is the number of completed best-reply rounds.
	Rounds int
	// Norms[k] is the norm after round k+1 (the Figure 2 series).
	Norms []float64
	// Converged reports whether the norm dropped below epsilon.
	Converged bool
	// UserTimes holds the users' expected response times at Profile.
	UserTimes []float64
	// OverallTime is the system-wide expected response time at Profile.
	OverallTime float64
	// Init echoes the initialization used.
	Init Init
}

// InitialProfile returns the starting profile for the given initialization.
func InitialProfile(sys *game.System, in Init) game.Profile {
	switch in {
	case InitProportional:
		return game.ProportionalProfile(sys)
	default:
		return game.NewProfile(sys.Users(), sys.Computers())
	}
}

// Solve runs the NASH distributed load-balancing algorithm of Section 3 as a
// sequential round-robin driver: in each round every user in turn observes
// the available processing rates, computes its best response with OPTIMAL,
// and updates its strategy; the round norm is the sum of the users' response
// time changes. Iteration stops when the norm is at most epsilon.
//
// This sequential driver is behaviourally identical to the token-ring
// message-passing implementation in internal/dist (one token circulation ==
// one round); the equivalence is covered by integration tests.
func Solve(sys *game.System, opts Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return SolveFrom(sys, InitialProfile(sys, opts.Init), opts)
}

// SolveFrom runs the NASH best-reply iteration starting from an explicit
// profile — the warm-start entry point used when re-balancing after a
// parameter change (the previous equilibrium is usually close to the new
// one) or when resuming a crashed distributed run from its persisted state.
// The starting profile's rows may be all-zero (treated as "user not yet in
// the game", D_i^(0) = 0, as under NASH_0).
func SolveFrom(sys *game.System, start game.Profile, opts Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(start) != sys.Users() {
		return nil, fmt.Errorf("core: starting profile has %d rows for %d users", len(start), sys.Users())
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	profile := start.Clone()
	m := sys.Users()

	// D_i^(0): zero for all-zero rows (NASH_0 semantics), the actual
	// response time otherwise.
	prevTimes := make([]float64, m)
	times := sys.UserResponseTimes(profile)
	for i := range prevTimes {
		if !zeroRow(profile[i]) && !math.IsInf(times[i], 0) {
			prevTimes[i] = times[i]
		}
	}

	res := &Result{Init: opts.Init}
	for round := 1; round <= maxRounds; round++ {
		var norm, maxShift float64
		for i := 0; i < m; i++ {
			avail := sys.AvailableRates(profile, i)
			next, err := Optimal(avail, sys.Arrivals[i])
			if err != nil {
				return nil, fmt.Errorf("round %d, user %d: %w", round, i, err)
			}
			if shift := l1(profile[i], next); shift > maxShift {
				maxShift = shift
			}
			profile[i] = next
			d := ResponseTime(avail, sys.Arrivals[i], next)
			norm += math.Abs(d - prevTimes[i])
			prevTimes[i] = d
		}
		res.Rounds = round
		res.Norms = append(res.Norms, norm)
		if opts.OnRound != nil {
			opts.OnRound(RoundStat{Round: round, Norm: norm, MaxShift: maxShift})
		}
		if norm <= eps {
			res.Converged = true
			break
		}
	}
	res.Profile = profile
	res.UserTimes = sys.UserResponseTimes(profile)
	res.OverallTime = sys.OverallResponseTime(profile)
	if !res.Converged {
		return res, fmt.Errorf("%w after %d rounds (norm=%g, eps=%g)", ErrNotConverged, res.Rounds, res.Norms[len(res.Norms)-1], eps)
	}
	return res, nil
}

func zeroRow(s game.Strategy) bool {
	for _, x := range s {
		if x != 0 {
			return false
		}
	}
	return true
}

func l1(a, b game.Strategy) float64 {
	if len(a) != len(b) {
		// InitZero first round: a may be all zeros of same length; lengths
		// always match by construction, but be defensive.
		return math.Inf(1)
	}
	var s float64
	for j := range a {
		s += math.Abs(a[j] - b[j])
	}
	return s
}

// VerifyEquilibrium checks that profile is an eps-Nash equilibrium of the
// system using OPTIMAL as the best-response oracle. It returns the largest
// improvement any user could gain by deviating unilaterally.
func VerifyEquilibrium(sys *game.System, p game.Profile, eps float64) (bool, float64, error) {
	return sys.EpsilonEquilibrium(p, Optimal, eps)
}
