package core_test

import (
	"fmt"
	"log"

	"nashlb/internal/core"
	"nashlb/internal/game"
)

// ExampleOptimal shows the water-filling structure of the best response:
// the slow computer is excluded until the load justifies it.
func ExampleOptimal() {
	light, _ := core.Optimal([]float64{4, 1}, 1)   // light load
	heavy, _ := core.Optimal([]float64{4, 1}, 2.5) // heavy load
	fmt.Printf("light: %.3f\nheavy: %.3f\n", light, heavy)
	// Output:
	// light: [1.000 0.000]
	// heavy: [0.933 0.067]
}

// ExampleSolve computes the Nash equilibrium of a two-user game and shows
// that both initializations agree.
func ExampleSolve() {
	sys, err := game.NewSystem([]float64{30, 10}, []float64{12, 12})
	if err != nil {
		log.Fatal(err)
	}
	zero, _ := core.Solve(sys, core.Options{Init: core.InitZero})
	prop, _ := core.Solve(sys, core.Options{Init: core.InitProportional})
	fmt.Printf("%s: D = %.4f s\n", zero.Init, zero.OverallTime)
	fmt.Printf("%s: D = %.4f s\n", prop.Init, prop.OverallTime)
	// Output:
	// NASH_0: D = 0.1115 s
	// NASH_P: D = 0.1115 s
}

// ExampleVerifyEquilibrium certifies that no user benefits from a
// unilateral deviation at the computed profile.
func ExampleVerifyEquilibrium() {
	sys, _ := game.NewSystem([]float64{100, 50, 20}, []float64{60, 40})
	res, _ := core.Solve(sys, core.Options{})
	ok, _, _ := core.VerifyEquilibrium(sys, res.Profile, 1e-6)
	fmt.Println(ok)
	// Output:
	// true
}
