package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nashlb/internal/game"
	"nashlb/internal/numeric"
)

// OptimalProjGrad solves the same best-response subproblem as Optimal with
// an entirely independent method — projected gradient descent on the
// probability simplex with backtracking line search — and exists to
// cross-validate the closed-form water-filling solution: two algorithms,
// one derived from the paper's KKT analysis and one generic, must agree.
// It is orders of magnitude slower than Optimal and is not used on any hot
// path.
func OptimalProjGrad(available []float64, arrival float64, tol float64, maxIter int) (game.Strategy, error) {
	n := len(available)
	if n == 0 {
		return nil, errors.New("core: no computers")
	}
	if !(arrival > 0) || math.IsInf(arrival, 0) || math.IsNaN(arrival) {
		return nil, fmt.Errorf("%w: got %g", ErrBadArrival, arrival)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	usable := make([]bool, n)
	var capTotal float64
	for j, a := range available {
		if a > 0 {
			usable[j] = true
			capTotal += a
		}
	}
	if arrival >= capTotal {
		return nil, fmt.Errorf("%w: lambda=%g, available=%g", ErrInsufficientCapacity, arrival, capTotal)
	}

	// Feasible interior start: fractions proportional to usable rates.
	s := make(game.Strategy, n)
	for j := range s {
		if usable[j] {
			s[j] = available[j] / capTotal
		}
	}
	objective := func(x game.Strategy) float64 {
		return ResponseTime(available, arrival, x)
	}
	grad := func(x game.Strategy, g []float64) {
		for j := range g {
			if !usable[j] {
				g[j] = math.Inf(1) // never assign here
				continue
			}
			rem := available[j] - x[j]*arrival
			if rem <= 0 {
				g[j] = math.Inf(1)
				continue
			}
			g[j] = available[j] / (rem * rem)
		}
	}

	g := make([]float64, n)
	cand := make(game.Strategy, n)
	step := 1.0 / (arrival + 1) // conservative initial step
	fCur := objective(s)
	for iter := 0; iter < maxIter; iter++ {
		grad(s, g)
		// Projected gradient step with backtracking.
		improved := false
		for try := 0; try < 60; try++ {
			for j := range cand {
				if usable[j] && !math.IsInf(g[j], 1) {
					cand[j] = s[j] - step*g[j]
				} else {
					cand[j] = math.Inf(-1) // forces projection to 0
				}
			}
			projectSimplex(cand, usable)
			// Keep strictly inside the stability region.
			ok := true
			for j := range cand {
				if cand[j] > 0 && cand[j]*arrival >= available[j] {
					ok = false
					break
				}
			}
			if ok {
				if fNew := objective(cand); fNew < fCur {
					copy(s, cand)
					fCur = fNew
					improved = true
					step *= 1.3
					break
				}
			}
			step *= 0.5
		}
		if !improved {
			break
		}
		if res := KKTResidual(available, arrival, s); res < tol {
			break
		}
	}
	// Final cleanup: exact conservation.
	var sum numeric.Accumulator
	for j := range s {
		if s[j] < 1e-15 {
			s[j] = 0
		}
		sum.Add(s[j])
	}
	if sv := sum.Value(); sv > 0 {
		for j := range s {
			s[j] /= sv
		}
	}
	return s, nil
}

// projectSimplex projects x onto the probability simplex restricted to the
// usable coordinates (others are forced to zero), using the standard
// sort-and-threshold algorithm of Held, Wolfe & Crowder.
func projectSimplex(x game.Strategy, usable []bool) {
	vals := make([]float64, 0, len(x))
	for j := range x {
		if usable[j] {
			if math.IsInf(x[j], -1) {
				x[j] = -1e18
			}
			vals = append(vals, x[j])
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	var cum, theta float64
	k := 0
	for i, v := range vals {
		cum += v
		t := (cum - 1) / float64(i+1)
		if v-t > 0 {
			k = i + 1
			theta = t
		}
	}
	if k == 0 { // degenerate: mass on the largest coordinate
		theta = vals[0] - 1
	}
	for j := range x {
		if !usable[j] {
			x[j] = 0
			continue
		}
		if v := x[j] - theta; v > 0 {
			x[j] = v
		} else {
			x[j] = 0
		}
	}
}
