package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"nashlb/internal/game"
	"nashlb/internal/rng"
)

func feasible(t *testing.T, s game.Strategy) {
	t.Helper()
	if err := game.CheckStrategy(s, len(s)); err != nil {
		t.Fatalf("infeasible strategy %v: %v", s, err)
	}
}

func TestOptimalSingleComputer(t *testing.T) {
	s, err := Optimal([]float64{10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || math.Abs(s[0]-1) > 1e-12 {
		t.Fatalf("s = %v, want [1]", s)
	}
}

func TestOptimalHomogeneousEqualSplit(t *testing.T) {
	s, err := Optimal([]float64{10, 10, 10, 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	feasible(t, s)
	for j := range s {
		if math.Abs(s[j]-0.25) > 1e-12 {
			t.Fatalf("homogeneous split not equal: %v", s)
		}
	}
}

func TestOptimalKnownTwoComputer(t *testing.T) {
	// a = (4, 1), lambda = 2.5: both active, t = (5-2.5)/3.
	s, err := Optimal([]float64{4, 1}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	feasible(t, s)
	tLevel := 2.5 / 3.0
	want0 := (4 - tLevel*2) / 2.5
	want1 := (1 - tLevel*1) / 2.5
	if math.Abs(s[0]-want0) > 1e-9 || math.Abs(s[1]-want1) > 1e-9 {
		t.Fatalf("s = %v, want [%v %v]", s, want0, want1)
	}
}

func TestOptimalDropsSlowComputerAtLightLoad(t *testing.T) {
	// a = (4, 1), lambda = 1: the slow computer must be excluded
	// (t over both = 4/3 >= sqrt(1)).
	s, err := Optimal([]float64{4, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 0 {
		t.Fatalf("slow computer should get nothing at light load: %v", s)
	}
	if math.Abs(s[0]-1) > 1e-12 {
		t.Fatalf("fast computer should get everything: %v", s)
	}
}

func TestOptimalUnsortedInputAndOriginalOrder(t *testing.T) {
	// Same system as above but with computers permuted: result must be the
	// correspondingly permuted strategy.
	a := []float64{1, 50, 3, 20}
	lambda := 30.0
	s, err := Optimal(a, lambda)
	if err != nil {
		t.Fatal(err)
	}
	feasible(t, s)
	// Monotonicity: higher available rate => at least as large a fraction.
	for j := range a {
		for k := range a {
			if a[j] > a[k] && s[j] < s[k]-1e-12 {
				t.Fatalf("monotonicity violated: a=%v s=%v", a, s)
			}
		}
	}
	if res := KKTResidual(a, lambda, s); res > 1e-9 {
		t.Fatalf("KKT residual %v", res)
	}
}

func TestOptimalSkipsSaturatedComputers(t *testing.T) {
	// Computer 1 is saturated by other users (available <= 0).
	s, err := Optimal([]float64{10, -2, 0, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	feasible(t, s)
	if s[1] != 0 || s[2] != 0 {
		t.Fatalf("saturated computers must get zero: %v", s)
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(nil, 1); err == nil {
		t.Error("no computers should fail")
	}
	if _, err := Optimal([]float64{1, 2}, 3); !errors.Is(err, ErrInsufficientCapacity) {
		t.Errorf("lambda == capacity should fail with ErrInsufficientCapacity, got %v", err)
	}
	if _, err := Optimal([]float64{-1, 0}, 0.5); !errors.Is(err, ErrInsufficientCapacity) {
		t.Errorf("no usable computer should fail, got %v", err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Optimal([]float64{10}, bad); !errors.Is(err, ErrBadArrival) {
			t.Errorf("arrival %v should fail with ErrBadArrival, got %v", bad, err)
		}
	}
	if _, err := Optimal([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN available rate should fail")
	}
}

func TestOptimalKKTProperty(t *testing.T) {
	// For random instances the output satisfies the Kuhn–Tucker conditions
	// (Theorem 2.1) and is feasible.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(12)
		a := make([]float64, n)
		var total float64
		for j := range a {
			a[j] = r.Uniform(0.5, 100)
			total += a[j]
		}
		lambda := r.Uniform(0.01, 0.99) * total
		s, err := Optimal(a, lambda)
		if err != nil {
			return false
		}
		if game.CheckStrategy(s, n) != nil {
			return false
		}
		// Stability within the subproblem: s_j*lambda < a_j.
		for j := range s {
			if s[j]*lambda >= a[j] {
				return false
			}
		}
		return KKTResidual(a, lambda, s) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBeatsRandomStrategiesProperty(t *testing.T) {
	// The optimum is at least as good as any random feasible strategy.
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		a := make([]float64, n)
		var total float64
		for j := range a {
			a[j] = r.Uniform(1, 50)
			total += a[j]
		}
		lambda := r.Uniform(0.05, 0.9) * total
		opt, err := Optimal(a, lambda)
		if err != nil {
			t.Fatal(err)
		}
		dOpt := ResponseTime(a, lambda, opt)
		// Random candidate: Dirichlet-ish normalized positive weights.
		cand := make(game.Strategy, n)
		var sum float64
		for j := range cand {
			cand[j] = r.Exp(1)
			sum += cand[j]
		}
		for j := range cand {
			cand[j] /= sum
		}
		if dCand := ResponseTime(a, lambda, cand); dOpt > dCand*(1+1e-9) {
			t.Fatalf("optimal %v worse than random %v (n=%d)", dOpt, dCand, n)
		}
	}
}

func TestOptimalMoreLoadUsesMoreComputers(t *testing.T) {
	// As lambda grows the active set never shrinks (water level falls).
	a := []float64{100, 40, 10, 5, 1}
	var capTotal float64
	for _, x := range a {
		capTotal += x
	}
	prevActive := 0
	for _, frac := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95} {
		s, err := Optimal(a, frac*capTotal)
		if err != nil {
			t.Fatal(err)
		}
		active := 0
		for _, x := range s {
			if x > 0 {
				active++
			}
		}
		if active < prevActive {
			t.Fatalf("active set shrank from %d to %d at load %v", prevActive, active, frac)
		}
		prevActive = active
	}
	if prevActive != len(a) {
		t.Fatalf("at 95%% load all computers should be active, got %d", prevActive)
	}
}

func TestResponseTimeSaturation(t *testing.T) {
	if d := ResponseTime([]float64{1}, 2, game.Strategy{1}); !math.IsInf(d, 1) {
		t.Fatalf("saturated response = %v, want +Inf", d)
	}
	if d := ResponseTime([]float64{0, 4}, 2, game.Strategy{0, 1}); math.IsInf(d, 1) {
		t.Fatalf("unused saturated computer should not matter, got %v", d)
	}
}

func TestKKTResidualDetectsSuboptimal(t *testing.T) {
	a := []float64{10, 10}
	// Optimal is the even split; a lopsided split must show a residual.
	if res := KKTResidual(a, 5, game.Strategy{0.9, 0.1}); res < 0.01 {
		t.Fatalf("lopsided split residual = %v, want large", res)
	}
	if res := KKTResidual(a, 5, game.Strategy{0.5, 0.5}); res > 1e-12 {
		t.Fatalf("even split residual = %v, want ~0", res)
	}
	if res := KKTResidual(a, 5, game.Strategy{0, 0}); !math.IsInf(res, 1) {
		t.Fatalf("empty support residual = %v, want +Inf", res)
	}
}

func BenchmarkOptimal16(b *testing.B) {
	a := []float64{100, 100, 50, 50, 50, 20, 20, 20, 20, 20, 10, 10, 10, 10, 10, 10}
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(a, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimal1024(b *testing.B) {
	r := rng.New(5)
	a := make([]float64, 1024)
	var total float64
	for j := range a {
		a[j] = r.Uniform(1, 100)
		total += a[j]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(a, 0.6*total); err != nil {
			b.Fatal(err)
		}
	}
}
