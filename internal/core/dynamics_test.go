package core

import (
	"math"
	"testing"

	"nashlb/internal/game"
	"nashlb/internal/rng"
)

func TestSolveDynamicsRoundRobinMatchesSolve(t *testing.T) {
	sys := paperSystem(t, 0.6)
	a, err := Solve(sys, Options{Init: InitProportional})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveDynamics(sys, DynamicsOptions{Init: InitProportional, Order: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.Profile {
		for j := range a.Profile[i] {
			if a.Profile[i][j] != b.Profile[i][j] {
				t.Fatalf("profiles differ at [%d][%d]", i, j)
			}
		}
	}
}

func TestAllOrdersReachTheSameEquilibrium(t *testing.T) {
	// Orda et al.: the equilibrium is unique, so every convergent dynamic
	// must land on the same profile.
	sys := paperSystem(t, 0.6)
	ref, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []DynamicsOptions{
		{Order: Random, Seed: 1},
		{Order: Random, Seed: 2, Init: InitProportional},
		{Order: Jacobi, Damping: 0.2, Init: InitProportional},
	} {
		res, err := SolveDynamics(sys, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Order, err)
		}
		for i := range ref.UserTimes {
			if math.Abs(res.UserTimes[i]-ref.UserTimes[i]) > 1e-6*(1+ref.UserTimes[i]) {
				t.Fatalf("%s: user %d time %v vs reference %v", opts.Order, i, res.UserTimes[i], ref.UserTimes[i])
			}
		}
		ok, impr, err := VerifyEquilibrium(sys, res.Profile, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s: not an equilibrium (improvement %g)", opts.Order, impr)
		}
	}
}

func TestJacobiOscillatesForSymmetricUsersUndamped(t *testing.T) {
	// The classic pathology: two identical users updating simultaneously
	// keep mirroring each other's overshoot. Undamped Jacobi must fail (or
	// need far more rounds); damping fixes it.
	sys, err := game.NewSystem([]float64{30, 10}, []float64{12, 12})
	if err != nil {
		t.Fatal(err)
	}
	_, errUndamped := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, MaxRounds: 500})
	damped, errDamped := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.5, MaxRounds: 500})
	if errDamped != nil {
		t.Fatalf("damped Jacobi failed: %v", errDamped)
	}
	if errUndamped == nil {
		// If it happens to converge, it must at least be far slower.
		und, _ := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, MaxRounds: 500})
		if und.Rounds < damped.Rounds*2 {
			t.Fatalf("undamped Jacobi unexpectedly well-behaved: %d rounds vs damped %d", und.Rounds, damped.Rounds)
		}
	}
}

func TestJacobiPreservesInitializationAdvantage(t *testing.T) {
	// The Figure-2 reproduction-gap hypothesis (EXPERIMENTS.md): under
	// Jacobi-style simultaneous updates the initial condition matters far
	// longer, so NASH_P's head start is worth proportionally more than
	// under the paper's Gauss-Seidel ring.
	sys := paperSystem(t, 0.6)
	z, errZ := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.2, Init: InitZero, Epsilon: 1e-4})
	p, errP := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.2, Init: InitProportional, Epsilon: 1e-4})
	if errZ != nil || errP != nil {
		t.Fatalf("jacobi solves failed: %v, %v", errZ, errP)
	}
	if p.Rounds >= z.Rounds {
		t.Fatalf("NASH_P (%d) should beat NASH_0 (%d) under Jacobi", p.Rounds, z.Rounds)
	}
}

func TestParallelJacobiMatchesSequentialExactly(t *testing.T) {
	// The parallel fan-out must be bit-identical to sequential Jacobi:
	// same rounds, same norms, same profile.
	rates := paperSystem(t, 0.6).Rates
	arr := make([]float64, 12)
	for i := range arr {
		arr[i] = 510 * 0.6 / 12
	}
	sys, err := game.NewSystem(rates, arr)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.1, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.1, Epsilon: 1e-6, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != par.Rounds {
		t.Fatalf("rounds differ: %d vs %d", seq.Rounds, par.Rounds)
	}
	for k := range seq.Norms {
		if seq.Norms[k] != par.Norms[k] {
			t.Fatalf("norms differ at round %d: %v vs %v", k+1, seq.Norms[k], par.Norms[k])
		}
	}
	for i := range seq.Profile {
		for j := range seq.Profile[i] {
			if seq.Profile[i][j] != par.Profile[i][j] {
				t.Fatalf("profiles differ at [%d][%d]", i, j)
			}
		}
	}
}

func TestSolveDynamicsValidation(t *testing.T) {
	sys := paperSystem(t, 0.5)
	if _, err := SolveDynamics(sys, DynamicsOptions{Order: UpdateOrder(9)}); err == nil {
		t.Error("unknown order accepted")
	}
	bad := &game.System{Rates: []float64{1}, Arrivals: []float64{2}}
	if _, err := SolveDynamics(bad, DynamicsOptions{}); err == nil {
		t.Error("invalid system accepted")
	}
	for o, want := range map[UpdateOrder]string{
		RoundRobin: "round-robin", Jacobi: "jacobi", Random: "random", UpdateOrder(9): "UpdateOrder(9)",
	} {
		if o.String() != want {
			t.Errorf("String = %q, want %q", o.String(), want)
		}
	}
}

func TestProjGradMatchesClosedForm(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(8)
		a := make([]float64, n)
		var total float64
		for j := range a {
			a[j] = r.Uniform(1, 60)
			total += a[j]
		}
		lambda := r.Uniform(0.1, 0.9) * total
		closed, err := Optimal(a, lambda)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := OptimalProjGrad(a, lambda, 1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		dClosed := ResponseTime(a, lambda, closed)
		dPG := ResponseTime(a, lambda, pg)
		if math.Abs(dPG-dClosed) > 1e-6*dClosed {
			t.Fatalf("trial %d: projected gradient D %v vs closed form %v (a=%v lambda=%v)",
				trial, dPG, dClosed, a, lambda)
		}
		for j := range closed {
			if math.Abs(pg[j]-closed[j]) > 1e-3 {
				t.Fatalf("trial %d: fractions differ at %d: %v vs %v", trial, j, pg[j], closed[j])
			}
		}
	}
}

func TestProjGradSkipsSaturated(t *testing.T) {
	s, err := OptimalProjGrad([]float64{10, -5, 0, 8}, 6, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 0 || s[2] != 0 {
		t.Fatalf("saturated computers got mass: %v", s)
	}
	if err := game.CheckStrategy(s, 4); err != nil {
		t.Fatal(err)
	}
}

func TestProjGradErrors(t *testing.T) {
	if _, err := OptimalProjGrad(nil, 1, 0, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := OptimalProjGrad([]float64{1}, 2, 0, 0); err == nil {
		t.Error("overload accepted")
	}
	if _, err := OptimalProjGrad([]float64{1}, -1, 0, 0); err == nil {
		t.Error("negative arrival accepted")
	}
}

func benchJacobiSystem(b *testing.B) *game.System {
	b.Helper()
	n, m := 512, 64
	rates := make([]float64, n)
	classes := []float64{10, 20, 50, 100}
	var total float64
	for j := range rates {
		rates[j] = classes[j%4]
		total += rates[j]
	}
	arr := make([]float64, m)
	for i := range arr {
		arr[i] = 0.6 * total / float64(m)
	}
	sys, err := game.NewSystem(rates, arr)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkJacobiSequential(b *testing.B) {
	sys := benchJacobiSystem(b)
	for i := 0; i < b.N; i++ {
		if _, err := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.03, Epsilon: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiParallel(b *testing.B) {
	sys := benchJacobiSystem(b)
	for i := 0; i < b.N; i++ {
		if _, err := SolveDynamics(sys, DynamicsOptions{Order: Jacobi, Damping: 0.03, Epsilon: 1e-4, Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalProjGrad16(b *testing.B) {
	a := []float64{100, 100, 50, 50, 50, 20, 20, 20, 20, 20, 10, 10, 10, 10, 10, 10}
	for i := 0; i < b.N; i++ {
		if _, err := OptimalProjGrad(a, 200, 1e-9, 0); err != nil {
			b.Fatal(err)
		}
	}
}
