package core

import (
	"fmt"
	"math"
	"sync"

	"nashlb/internal/game"
	"nashlb/internal/rng"
)

// UpdateOrder selects how users take turns in the best-reply iteration.
// The paper's NASH algorithm is RoundRobin (a token ring); the alternatives
// exist to study the dynamics: Jacobi updates everyone simultaneously
// against the previous round's state, and Random permutes the turn order
// every round. Orda et al. prove the equilibrium itself is unique for this
// class of games, so all convergent orders must land on the same profile —
// an invariant the test suite checks.
type UpdateOrder int

const (
	// RoundRobin is the paper's order: user 0, 1, ..., m-1, each seeing
	// the updates of those before it (Gauss–Seidel).
	RoundRobin UpdateOrder = iota
	// Jacobi updates all users simultaneously against the previous
	// round's profile. It preserves the initial condition's influence far
	// longer than RoundRobin — relevant when comparing NASH_0 and NASH_P —
	// but is not guaranteed to converge (two symmetric users can
	// oscillate, swapping overshoots forever).
	Jacobi
	// Random draws a fresh uniformly random permutation of the users each
	// round (Gauss–Seidel with shuffled turns).
	Random
)

// String names the order.
func (o UpdateOrder) String() string {
	switch o {
	case RoundRobin:
		return "round-robin"
	case Jacobi:
		return "jacobi"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("UpdateOrder(%d)", int(o))
	}
}

// DynamicsOptions configures SolveDynamics.
type DynamicsOptions struct {
	// Init selects NASH_0 or NASH_P.
	Init Init
	// Order selects the update discipline (RoundRobin by default).
	Order UpdateOrder
	// Epsilon is the acceptance tolerance on the round norm.
	Epsilon float64
	// MaxRounds bounds the iteration.
	MaxRounds int
	// Seed drives the Random order's permutations.
	Seed uint64
	// Damping, in (0, 1], scales each user's move toward its best
	// response: s <- (1-d)*s_old + d*s_best. 1 is the undamped best reply.
	// Damping below 1 stabilizes Jacobi dynamics.
	Damping float64
	// Parallel, with Order == Jacobi, computes all users' best responses
	// concurrently (one goroutine per user) — the payoff of simultaneous
	// updates: within a round, nothing depends on anything else. It is
	// ignored for the sequential orders, whose whole point is that user
	// i+1 sees user i's fresh strategy.
	Parallel bool
}

// timeDelta returns |d - prev| with the Inf-Inf indeterminate mapped to
// +Inf: under Jacobi dynamics a transient simultaneous overshoot can
// saturate computers, making both response times infinite; the norm must
// then read "not converged" (Inf), not NaN.
func timeDelta(d, prev float64) float64 {
	delta := math.Abs(d - prev)
	if math.IsNaN(delta) {
		return math.Inf(1)
	}
	return delta
}

// SolveDynamics runs the best-reply iteration under a configurable update
// order. With Order == RoundRobin, Damping == 1 it reproduces Solve exactly.
func SolveDynamics(sys *game.System, opts DynamicsOptions) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	damp := opts.Damping
	if damp <= 0 || damp > 1 {
		damp = 1
	}
	switch opts.Order {
	case RoundRobin, Jacobi, Random:
	default:
		return nil, fmt.Errorf("core: unknown update order %d", int(opts.Order))
	}

	profile := InitialProfile(sys, opts.Init)
	m := sys.Users()
	prevTimes := make([]float64, m)
	if opts.Init == InitProportional {
		copy(prevTimes, sys.UserResponseTimes(profile))
	}
	stream := rng.New(opts.Seed ^ 0x9e3779b97f4a7c15)

	res := &Result{Init: opts.Init}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}

	for round := 1; round <= maxRounds; round++ {
		if opts.Order == Random {
			for i := m - 1; i > 0; i-- {
				j := stream.Intn(i + 1)
				order[i], order[j] = order[j], order[i]
			}
		}
		var norm, maxShift float64
		base := profile
		if opts.Order == Jacobi {
			base = profile.Clone() // everyone responds to the old state
		}
		next := profile
		if opts.Order == Jacobi && opts.Parallel {
			// Simultaneous updates have no intra-round dependencies: fan
			// the best responses out across goroutines. Each goroutine
			// touches only its own row of `next` and its own slot of the
			// result arrays.
			shifts := make([]float64, m)
			deltas := make([]float64, m)
			errs := make([]error, m)
			var wg sync.WaitGroup
			for _, i := range order {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					avail := sys.AvailableRates(base, i)
					best, err := Optimal(avail, sys.Arrivals[i])
					if err != nil {
						errs[i] = err
						return
					}
					moved := best
					if damp < 1 && !zeroRow(base[i]) {
						moved = make(game.Strategy, len(best))
						for j := range moved {
							moved[j] = (1-damp)*base[i][j] + damp*best[j]
						}
					}
					shifts[i] = l1(base[i], moved)
					next[i] = moved
					d := ResponseTime(avail, sys.Arrivals[i], moved)
					deltas[i] = timeDelta(d, prevTimes[i])
					prevTimes[i] = d
				}()
			}
			wg.Wait()
			for i := 0; i < m; i++ {
				if errs[i] != nil {
					return nil, fmt.Errorf("round %d, user %d: %w", round, i, errs[i])
				}
				norm += deltas[i]
				if shifts[i] > maxShift {
					maxShift = shifts[i]
				}
			}
			profile = next
			res.Rounds = round
			res.Norms = append(res.Norms, norm)
			if norm <= eps {
				res.Converged = true
				break
			}
			continue
		}
		for _, i := range order {
			avail := sys.AvailableRates(base, i)
			best, err := Optimal(avail, sys.Arrivals[i])
			if err != nil {
				return nil, fmt.Errorf("round %d, user %d: %w", round, i, err)
			}
			moved := best
			if damp < 1 && !zeroRow(profile[i]) {
				moved = make(game.Strategy, len(best))
				for j := range moved {
					moved[j] = (1-damp)*profile[i][j] + damp*best[j]
				}
			}
			if shift := l1(profile[i], moved); shift > maxShift {
				maxShift = shift
			}
			next[i] = moved
			d := ResponseTime(avail, sys.Arrivals[i], moved)
			norm += timeDelta(d, prevTimes[i])
			prevTimes[i] = d
		}
		profile = next
		res.Rounds = round
		res.Norms = append(res.Norms, norm)
		if norm <= eps {
			res.Converged = true
			break
		}
	}
	res.Profile = profile
	res.UserTimes = sys.UserResponseTimes(profile)
	res.OverallTime = sys.OverallResponseTime(profile)
	if !res.Converged {
		return res, fmt.Errorf("%w after %d rounds (order %s)", ErrNotConverged, res.Rounds, opts.Order)
	}
	// A Jacobi fixed point is still a profile of mutual best responses,
	// but a small residual norm does not by itself certify feasibility of
	// the simultaneous moves; validate before declaring victory.
	if err := sys.CheckProfile(profile); err != nil {
		return res, fmt.Errorf("core: %s dynamics converged to an infeasible profile: %w", opts.Order, err)
	}
	return res, nil
}
