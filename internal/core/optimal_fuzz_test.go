package core

import (
	"math"
	"testing"

	"nashlb/internal/game"
)

// FuzzOptimal feeds arbitrary rate vectors and arrival rates into the
// best-response solver: it must never panic, and every successful result
// must be a feasible, stable, KKT-optimal strategy.
func FuzzOptimal(f *testing.F) {
	f.Add(10.0, 5.0, 1.0, 4.0)
	f.Add(4.0, 1.0, 0.0, 2.5)
	f.Add(100.0, 0.5, -3.0, 50.0)
	f.Add(1e-9, 1e9, 1.0, 0.1)
	f.Add(math.MaxFloat64, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a0, a1, a2, lambda float64) {
		avail := []float64{a0, a1, a2}
		s, err := Optimal(avail, lambda)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		if err := game.CheckStrategy(s, len(avail)); err != nil {
			t.Fatalf("infeasible output for avail=%v lambda=%v: %v", avail, lambda, err)
		}
		for j := range s {
			if s[j] > 0 && s[j]*lambda >= avail[j]*(1+1e-9) {
				t.Fatalf("unstable assignment: s[%d]*lambda=%v >= a=%v", j, s[j]*lambda, avail[j])
			}
		}
		if res := KKTResidual(avail, lambda, s); res > 1e-6 && !math.IsInf(res, 1) {
			// Extreme magnitude ratios can legitimately hit conditioning
			// limits; only flag clearly broken optima at sane scales.
			ratio := maxOf(avail) / lambda
			if ratio < 1e12 && ratio > 1e-12 {
				t.Fatalf("KKT residual %v for avail=%v lambda=%v", res, avail, lambda)
			}
		}
	})
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
