package des

import (
	"errors"
	"math"
	"sort"
	"testing"

	"nashlb/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		at := r.Uniform(0, 100)
		if _, err := s.ScheduleAt(at, func() { fired = append(fired, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntilEmpty()
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("events fired out of timestamp order")
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.ScheduleAt(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntilEmpty()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestScheduleRelative(t *testing.T) {
	s := New()
	var at float64
	if _, err := s.Schedule(3, func() {
		if _, err := s.Schedule(4, func() { at = s.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntilEmpty()
	if at != 7 {
		t.Fatalf("nested schedule fired at %v, want 7", at)
	}
}

func TestPastAndNilRejected(t *testing.T) {
	s := New()
	if _, err := s.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntilEmpty()
	if _, err := s.ScheduleAt(0.5, func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("past event accepted: %v", err)
	}
	if _, err := s.Schedule(-1, func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("negative delay accepted: %v", err)
	}
	if _, err := s.ScheduleAt(math.NaN(), func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("NaN time accepted: %v", err)
	}
	if _, err := s.Schedule(1, nil); err == nil {
		t.Error("nil action accepted")
	}
}

func TestZeroDelayFiresAfterCurrentEvent(t *testing.T) {
	s := New()
	var order []string
	if _, err := s.Schedule(1, func() {
		order = append(order, "a")
		if _, err := s.Schedule(0, func() { order = append(order, "c") }); err != nil {
			t.Error(err)
		}
		order = append(order, "b")
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntilEmpty()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h, err := s.Schedule(1, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !h.Pending() {
		t.Error("handle should be pending")
	}
	if !h.Cancel() {
		t.Error("first Cancel should report true")
	}
	if h.Cancel() {
		t.Error("second Cancel should report false")
	}
	if h.Pending() {
		t.Error("cancelled handle still pending")
	}
	s.RunUntilEmpty()
	if ran {
		t.Error("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	h, _ := s.Schedule(1, func() {})
	s.RunUntilEmpty()
	if h.Cancel() {
		t.Error("Cancel after firing should report false")
	}
	if h.Pending() {
		t.Error("fired handle still pending")
	}
	var zero Handle
	if zero.Cancel() || zero.Pending() {
		t.Error("zero handle should be inert")
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := s.ScheduleAt(float64(i), func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(5.5); n != 5 {
		t.Fatalf("executed %d events, want 5", n)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock = %v, want 5.5 (advanced to horizon)", s.Now())
	}
	if n := s.Run(100); n != 5 {
		t.Fatalf("resumed run executed %d, want 5", n)
	}
	// Drained schedule: clock advances to the horizon.
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100 (horizon after drain)", s.Now())
	}
}

func TestRunAdvancesToHorizonWhenEmpty(t *testing.T) {
	s := New()
	s.Run(42)
	if s.Now() != 42 {
		t.Fatalf("empty run should advance clock to horizon, got %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := s.ScheduleAt(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntilEmpty()
	if count != 3 {
		t.Fatalf("Stop did not halt run: count = %d", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
	// Resume.
	s.RunUntilEmpty()
	if count != 10 {
		t.Fatalf("resume failed: count = %d", count)
	}
}

func TestStep(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		if _, err := s.ScheduleAt(float64(i), func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Step() || !s.Step() {
		t.Fatal("Step should execute events")
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if !s.Step() {
		t.Fatal("third Step should execute")
	}
	if s.Step() {
		t.Fatal("Step on empty schedule should report false")
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired = %d", s.Fired())
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	s := New()
	ran := false
	h, _ := s.ScheduleAt(1, func() { t.Error("cancelled fired") })
	if _, err := s.ScheduleAt(2, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	if !s.Step() {
		t.Fatal("Step should skip cancelled and run next")
	}
	if !ran || s.Now() != 2 {
		t.Fatalf("ran=%v now=%v", ran, s.Now())
	}
}

func TestSelfReschedulingProcess(t *testing.T) {
	// An M/M/1-style generator pattern: a process that reschedules itself.
	s := New()
	r := rng.New(7)
	arrivals := 0
	var tick func()
	tick = func() {
		arrivals++
		if _, err := s.Schedule(r.Exp(10), tick); err != nil {
			t.Error(err)
		}
	}
	if _, err := s.Schedule(r.Exp(10), tick); err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	// ~10 arrivals/sec for 1000 sec.
	if arrivals < 9000 || arrivals > 11000 {
		t.Fatalf("arrivals = %d, want ~10000", arrivals)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	r := rng.New(3)
	var tick func()
	tick = func() {
		_, _ = s.Schedule(r.Exp(1), tick)
	}
	_, _ = s.Schedule(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
