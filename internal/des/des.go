// Package des is a minimal discrete-event simulation kernel: a virtual
// clock, a priority queue of timestamped events, and cancellable event
// handles. It replaces the role Sim++ (Cubert & Fishwick 1995) played in the
// paper's evaluation — event scheduling and queueing primitives — with a
// dependency-free Go implementation.
//
// Determinism: events fire in non-decreasing timestamp order, and events
// with equal timestamps fire in scheduling (FIFO) order, so simulations are
// exactly reproducible given the same random streams.
//
// # Kernel internals
//
// Events live in a slab ([]event) indexed by an intrusive 4-ary min-heap of
// slot numbers; fired and cancelled slots return to a free list, so the
// steady state of a self-rescheduling model performs zero heap allocations
// per event. Handles are generation-stamped (slot, gen) pairs: reusing a
// slot bumps its generation, which invalidates stale handles in O(1)
// without keeping the event record alive. Cancellation stays lazy (O(1)),
// but when cancelled entries outnumber live ones the heap is compacted in
// O(n), so timeout-heavy models (schedule a deadline, cancel it on
// completion) cannot grow the schedule without bound.
//
// Models on the hot path should prefer typed events (SetHandler plus
// ScheduleEvent) over closure events (Schedule): a typed event carries an
// integer kind and argument dispatched through one pre-installed handler,
// so scheduling it captures nothing and allocates nothing.
package des

import (
	"errors"
	"math"
)

// ErrPastTime is returned when an event is scheduled before the current
// simulation time.
var ErrPastTime = errors.New("des: cannot schedule event in the past")

// ErrNoHandler is returned by ScheduleEvent when no typed-event handler has
// been installed with SetHandler.
var ErrNoHandler = errors.New("des: ScheduleEvent without SetHandler")

// EventFunc dispatches typed events: kind and arg are model-defined (e.g.
// "arrival of user arg"). One handler serves the whole simulator, so typed
// scheduling allocates nothing.
type EventFunc func(kind, arg int32)

// Handle identifies a scheduled event and allows cancelling it. A Handle is
// only valid for the Simulator that issued it; the zero Handle is inert.
type Handle struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Cancel removes the event from the schedule if it has not fired yet.
// It is safe to call multiple times. It reports whether the event was
// actually cancelled by this call.
func (h Handle) Cancel() bool {
	s := h.s
	if s == nil {
		return false
	}
	ev := &s.slab[h.idx]
	if ev.gen != h.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	ev.action = nil // release the closure now; the slot drains lazily
	s.cancelled++
	s.maybeCompact()
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	if h.s == nil {
		return false
	}
	ev := &h.s.slab[h.idx]
	return ev.gen == h.gen && !ev.cancelled
}

// event is one slab record. A slot is live while its index sits in the
// heap; firing or compaction releases it to the free list and bumps gen.
type event struct {
	time      float64
	seq       uint64
	action    func() // closure event when non-nil, typed event otherwise
	kind      int32
	arg       int32
	gen       uint32
	cancelled bool
}

// compactMin is the minimum number of cancelled entries before compaction
// is considered; below it the O(n) sweep costs more than it saves.
const compactMin = 64

// Simulator is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event actions on the
// calling goroutine.
type Simulator struct {
	now       float64
	slab      []event
	heap      []int32 // slab indices ordered by (time, seq)
	free      []int32 // released slot stack
	seq       uint64
	fired     uint64
	cancelled int // cancelled entries still occupying the heap
	stopped   bool
	handler   EventFunc
}

// New returns a simulator at time zero with an empty schedule.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled to fire. Cancelled
// events are excluded even while they transiently occupy the heap.
func (s *Simulator) Pending() int { return len(s.heap) - s.cancelled }

// SetHandler installs the typed-event dispatcher used by ScheduleEvent.
func (s *Simulator) SetHandler(h EventFunc) { s.handler = h }

// Grow pre-sizes the kernel for n concurrently pending events, so a model
// whose schedule never exceeds n performs no allocations after setup.
func (s *Simulator) Grow(n int) {
	if cap(s.slab) < n {
		slab := make([]event, len(s.slab), n)
		copy(slab, s.slab)
		s.slab = slab
	}
	if cap(s.heap) < n {
		h := make([]int32, len(s.heap), n)
		copy(h, s.heap)
		s.heap = h
	}
	if cap(s.free) < n {
		f := make([]int32, len(s.free), n)
		copy(f, s.free)
		s.free = f
	}
}

// Schedule registers action to fire delay time units from now and returns a
// cancellable handle. A negative delay returns ErrPastTime; a zero delay is
// legal and fires after all previously scheduled events at the current time.
func (s *Simulator) Schedule(delay float64, action func()) (Handle, error) {
	return s.ScheduleAt(s.now+delay, action)
}

// ScheduleAt registers action at the absolute simulation time t.
func (s *Simulator) ScheduleAt(t float64, action func()) (Handle, error) {
	if action == nil {
		return Handle{}, errors.New("des: nil action")
	}
	return s.push(t, action, 0, 0)
}

// ScheduleEvent registers a typed event (kind, arg) to fire delay time
// units from now, dispatched through the handler installed by SetHandler.
// Unlike Schedule it captures no closure, so it allocates nothing on the
// steady state.
func (s *Simulator) ScheduleEvent(delay float64, kind, arg int32) (Handle, error) {
	return s.ScheduleEventAt(s.now+delay, kind, arg)
}

// ScheduleEventAt registers a typed event at the absolute simulation time t.
func (s *Simulator) ScheduleEventAt(t float64, kind, arg int32) (Handle, error) {
	if s.handler == nil {
		return Handle{}, ErrNoHandler
	}
	return s.push(t, nil, kind, arg)
}

func (s *Simulator) push(t float64, action func(), kind, arg int32) (Handle, error) {
	if t < s.now || math.IsNaN(t) {
		return Handle{}, ErrPastTime
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slab = append(s.slab, event{})
		idx = int32(len(s.slab) - 1)
	}
	ev := &s.slab[idx]
	ev.time = t
	ev.seq = s.seq
	ev.action = action
	ev.kind = kind
	ev.arg = arg
	ev.cancelled = false
	s.seq++
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
	return Handle{s: s, idx: idx, gen: ev.gen}, nil
}

// release returns a popped slot to the free list, invalidating handles.
func (s *Simulator) release(idx int32) {
	ev := &s.slab[idx]
	ev.action = nil
	ev.cancelled = false
	ev.gen++
	s.free = append(s.free, idx)
}

// less orders heap entries by (time, seq): timestamp order with FIFO
// tie-breaking. seq is unique, so this is a strict total order and the pop
// sequence is independent of the heap's internal layout.
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.slab[a], &s.slab[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// The heap is 4-ary: shallower than a binary heap (fewer cache-missing
// levels per sift) at the cost of three extra comparisons per level, a
// classic win for pointer-free priority queues.

func (s *Simulator) siftUp(i int) {
	h := s.heap
	for i > 0 {
		p := (i - 1) >> 2
		if !s.less(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		best := i
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if s.less(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popTop removes the heap minimum (which the caller has already read).
func (s *Simulator) popTop() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

// maybeCompact sweeps cancelled entries out of the heap once they outnumber
// the live ones (and exceed a fixed floor), re-establishing the heap in
// O(n). Amortized against the cancellations that triggered it, the sweep is
// O(1) per cancel, and it bounds the schedule at twice the live event count
// no matter how many timers a model sets and abandons.
func (s *Simulator) maybeCompact() {
	if s.cancelled < compactMin || 2*s.cancelled <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, idx := range s.heap {
		if s.slab[idx].cancelled {
			s.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	s.heap = live
	s.cancelled = 0
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Stop makes the current Run call return after the executing event's action
// completes. Pending events remain scheduled.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the schedule is empty, the
// next event is after `until`, or Stop is called. The clock is left at the
// time of the last executed event (or at `until` if the run drained to the
// horizon with events remaining beyond it — the clock never exceeds until).
// It returns the number of events executed by this call.
func (s *Simulator) Run(until float64) uint64 {
	s.stopped = false
	var executed uint64
	for len(s.heap) > 0 && !s.stopped {
		top := s.heap[0]
		ev := &s.slab[top]
		if ev.cancelled {
			s.popTop()
			s.cancelled--
			s.release(top)
			continue
		}
		if ev.time > until {
			if s.now < until {
				s.now = until
			}
			return executed
		}
		s.now = ev.time
		action, kind, arg := ev.action, ev.kind, ev.arg
		s.popTop()
		s.release(top) // before the action runs, so it can reuse the slot
		if action != nil {
			action()
		} else {
			s.handler(kind, arg)
		}
		s.fired++
		executed++
	}
	if !s.stopped && !math.IsInf(until, 1) && s.now < until && len(s.heap) == 0 {
		s.now = until
	}
	return executed
}

// RunUntilEmpty executes events until none remain or Stop is called; it
// returns the number executed. Use with care: a self-rescheduling process
// never drains.
func (s *Simulator) RunUntilEmpty() uint64 {
	return s.Run(math.Inf(1))
}

// Step executes exactly the next pending event, if any, and reports whether
// one was executed. Cancelled events are skipped without counting.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		top := s.heap[0]
		ev := &s.slab[top]
		s.popTop()
		if ev.cancelled {
			s.cancelled--
			s.release(top)
			continue
		}
		s.now = ev.time
		action, kind, arg := ev.action, ev.kind, ev.arg
		s.release(top) // before the action runs, so it can reuse the slot
		if action != nil {
			action()
		} else {
			s.handler(kind, arg)
		}
		s.fired++
		return true
	}
	return false
}
