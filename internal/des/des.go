// Package des is a minimal discrete-event simulation kernel: a virtual
// clock, a priority queue of timestamped events, and cancellable event
// handles. It replaces the role Sim++ (Cubert & Fishwick 1995) played in the
// paper's evaluation — event scheduling and queueing primitives — with a
// dependency-free Go implementation.
//
// Determinism: events fire in non-decreasing timestamp order, and events
// with equal timestamps fire in scheduling (FIFO) order, so simulations are
// exactly reproducible given the same random streams.
package des

import (
	"container/heap"
	"errors"
	"math"
)

// ErrPastTime is returned when an event is scheduled before the current
// simulation time.
var ErrPastTime = errors.New("des: cannot schedule event in the past")

// Handle identifies a scheduled event and allows cancelling it. A Handle is
// only valid for the Simulator that issued it.
type Handle struct {
	ev *event
}

// Cancel removes the event from the schedule if it has not fired yet.
// It is safe to call multiple times. It reports whether the event was
// actually cancelled by this call.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancelled || h.ev.fired {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	return h.ev != nil && !h.ev.cancelled && !h.ev.fired
}

type event struct {
	time      float64
	seq       uint64
	action    func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event actions on the
// calling goroutine.
type Simulator struct {
	now     float64
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// New returns a simulator at time zero with an empty schedule.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled (including events
// cancelled but not yet discarded; cancelled events never execute).
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule registers action to fire delay time units from now and returns a
// cancellable handle. A negative delay returns ErrPastTime; a zero delay is
// legal and fires after all previously scheduled events at the current time.
func (s *Simulator) Schedule(delay float64, action func()) (Handle, error) {
	return s.ScheduleAt(s.now+delay, action)
}

// ScheduleAt registers action at the absolute simulation time t.
func (s *Simulator) ScheduleAt(t float64, action func()) (Handle, error) {
	if t < s.now || math.IsNaN(t) {
		return Handle{}, ErrPastTime
	}
	if action == nil {
		return Handle{}, errors.New("des: nil action")
	}
	ev := &event{time: t, seq: s.seq, action: action}
	s.seq++
	heap.Push(&s.events, ev)
	return Handle{ev: ev}, nil
}

// Stop makes the current Run call return after the executing event's action
// completes. Pending events remain scheduled.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the schedule is empty, the
// next event is after `until`, or Stop is called. The clock is left at the
// time of the last executed event (or at `until` if the run drained to the
// horizon with events remaining beyond it — the clock never exceeds until).
// It returns the number of events executed by this call.
func (s *Simulator) Run(until float64) uint64 {
	s.stopped = false
	var executed uint64
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.time > until {
			if s.now < until {
				s.now = until
			}
			return executed
		}
		heap.Pop(&s.events)
		if next.cancelled {
			continue
		}
		s.now = next.time
		next.fired = true
		next.action()
		s.fired++
		executed++
	}
	if !s.stopped && !math.IsInf(until, 1) && s.now < until && len(s.events) == 0 {
		s.now = until
	}
	return executed
}

// RunUntilEmpty executes events until none remain or Stop is called; it
// returns the number executed. Use with care: a self-rescheduling process
// never drains.
func (s *Simulator) RunUntilEmpty() uint64 {
	return s.Run(math.Inf(1))
}

// Step executes exactly the next pending event, if any, and reports whether
// one was executed. Cancelled events are skipped without counting.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		next := heap.Pop(&s.events).(*event)
		if next.cancelled {
			continue
		}
		s.now = next.time
		next.fired = true
		next.action()
		s.fired++
		return true
	}
	return false
}
