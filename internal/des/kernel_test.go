package des

import (
	"errors"
	"sort"
	"testing"

	"nashlb/internal/rng"
)

func TestTypedEventsDispatch(t *testing.T) {
	s := New()
	type fired struct{ kind, arg int32 }
	var got []fired
	s.SetHandler(func(kind, arg int32) { got = append(got, fired{kind, arg}) })
	if _, err := s.ScheduleEvent(2, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleEvent(1, 2, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleEventAt(1, 3, 30); err != nil {
		t.Fatal(err)
	}
	s.RunUntilEmpty()
	want := []fired{{2, 20}, {3, 30}, {1, 10}}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleEventWithoutHandler(t *testing.T) {
	s := New()
	if _, err := s.ScheduleEvent(1, 0, 0); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestTypedAndClosureEventsInterleave(t *testing.T) {
	s := New()
	var order []int
	s.SetHandler(func(kind, arg int32) { order = append(order, int(arg)) })
	if _, err := s.ScheduleEvent(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(1, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleEvent(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	s.RunUntilEmpty()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3] (FIFO across event flavors)", order)
	}
}

// TestCancelCompactionBoundsMemory is the lazy-cancel leak regression: the
// seed kernel kept cancelled-but-unpopped events in the heap forever, so a
// timeout-heavy model (schedule a deadline, cancel it on completion) grew
// the schedule without bound. A million schedule+cancel cycles must leave
// both the heap and the slab bounded by the live event count, not the
// cancellation count.
func TestCancelCompactionBoundsMemory(t *testing.T) {
	s := New()
	const live = 100
	for i := 0; i < live; i++ {
		if _, err := s.ScheduleAt(1e9+float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	const cycles = 1_000_000
	for i := 0; i < cycles; i++ {
		h, err := s.Schedule(1e6, func() { t.Error("cancelled timer fired") })
		if err != nil {
			t.Fatal(err)
		}
		if !h.Cancel() {
			t.Fatal("cancel failed")
		}
		if p := s.Pending(); p != live {
			t.Fatalf("cycle %d: Pending() = %d, want %d (cancelled events must not inflate it)", i, p, live)
		}
	}
	// Compaction keeps cancelled entries below the live count (plus the
	// compactMin floor); without it the heap would hold ~1M dead entries.
	if bound := 2*(live+compactMin) + 1; len(s.heap) > bound {
		t.Fatalf("heap holds %d entries after %d cancels, want <= %d", len(s.heap), cycles, bound)
	}
	if bound := 4 * (live + compactMin); len(s.slab) > bound {
		t.Fatalf("slab holds %d slots after %d cancels, want <= %d", len(s.slab), cycles, bound)
	}
	if n := s.Run(2e9); n != live {
		t.Fatalf("executed %d events, want %d", n, live)
	}
}

// TestStaleHandleAfterSlotReuse checks generation stamping: a handle whose
// slot has been recycled must go inert instead of aliasing the new event.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	s := New()
	h1, _ := s.Schedule(1, func() {})
	s.RunUntilEmpty() // fires h1, releasing its slot
	ran := false
	h2, _ := s.Schedule(1, func() { ran = true }) // reuses the slot
	if h1.Pending() {
		t.Error("stale handle reports pending")
	}
	if h1.Cancel() {
		t.Error("stale handle cancelled the recycled slot's event")
	}
	if !h2.Pending() {
		t.Error("live handle should be pending")
	}
	s.RunUntilEmpty()
	if !ran {
		t.Error("event killed through a stale handle")
	}
}

// TestFiringOrderMatchesReferenceModel drives the kernel with a random
// schedule/cancel workload (duplicate timestamps included) and checks the
// firing order against a trivially correct sort-based reference.
func TestFiringOrderMatchesReferenceModel(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		s := New()
		type ref struct {
			time float64
			seq  int
		}
		var want []ref
		var got []int
		var handles []Handle
		n := 200 + r.Intn(300)
		for i := 0; i < n; i++ {
			// Coarse grid forces plenty of exact ties.
			at := float64(r.Intn(50))
			i := i
			h, err := s.ScheduleAt(at, func() { got = append(got, i) })
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
			want = append(want, ref{at, i})
		}
		cancelled := make(map[int]bool)
		for k := 0; k < n/3; k++ {
			victim := r.Intn(n)
			if handles[victim].Cancel() {
				cancelled[victim] = true
			}
		}
		s.RunUntilEmpty()
		var expect []int
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].time != want[b].time {
				return want[a].time < want[b].time
			}
			return want[a].seq < want[b].seq
		})
		for _, w := range want {
			if !cancelled[w.seq] {
				expect = append(expect, w.seq)
			}
		}
		if len(got) != len(expect) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(expect))
		}
		for i := range expect {
			if got[i] != expect[i] {
				t.Fatalf("trial %d: firing order diverges from reference at %d", trial, i)
			}
		}
	}
}

// TestScheduleStepAllocs is the allocation-regression gate for the kernel's
// steady state: rescheduling and firing events — closure-based with a
// hoisted closure, and typed — must not allocate.
func TestScheduleStepAllocs(t *testing.T) {
	s := New()
	r := rng.New(3)
	var tick func()
	tick = func() { _, _ = s.Schedule(r.Exp(1), tick) }
	_, _ = s.Schedule(0, tick)
	for i := 0; i < 1024; i++ { // reach steady-state capacity
		s.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { s.Step() }); allocs != 0 {
		t.Errorf("closure Schedule/Step allocates %v per event, want 0", allocs)
	}

	ts := New()
	tr := rng.New(4)
	ts.SetHandler(func(kind, arg int32) { _, _ = ts.ScheduleEvent(tr.Exp(1), kind, arg) })
	_, _ = ts.ScheduleEvent(0, 1, 7)
	for i := 0; i < 1024; i++ {
		ts.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { ts.Step() }); allocs != 0 {
		t.Errorf("typed ScheduleEvent/Step allocates %v per event, want 0", allocs)
	}
}

// TestCancelAllocs: the schedule+cancel cycle (timeout pattern) must not
// allocate on the steady state either, compaction included.
func TestCancelAllocs(t *testing.T) {
	s := New()
	for i := 0; i < 4096; i++ { // pre-grow past every compaction threshold
		h, _ := s.Schedule(1e6, func() {})
		h.Cancel()
	}
	hoisted := func() {}
	if allocs := testing.AllocsPerRun(1000, func() {
		h, _ := s.Schedule(1e6, hoisted)
		h.Cancel()
	}); allocs != 0 {
		t.Errorf("schedule+cancel allocates %v per cycle, want 0", allocs)
	}
}

// BenchmarkCoreKernelOnly measures the pure schedule+fire cycle with a
// constant delay — kernel cost with no random-variate overhead. This is
// the headline DES microbenchmark gated in BENCH_core.json (the seed
// pointer-heap kernel ran it at ~60-70 ns/op with 1 alloc/op).
func BenchmarkCoreKernelOnly(b *testing.B) {
	s := New()
	s.SetHandler(func(kind, arg int32) { _, _ = s.ScheduleEvent(1, kind, arg) })
	_, _ = s.ScheduleEvent(0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCoreEventLoopTyped measures the kernel's steady-state hot path
// (schedule + fire one typed event) — the inner loop of every simulation.
func BenchmarkCoreEventLoopTyped(b *testing.B) {
	s := New()
	r := rng.New(3)
	s.SetHandler(func(kind, arg int32) { _, _ = s.ScheduleEvent(r.Exp(1), kind, arg) })
	_, _ = s.ScheduleEvent(0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCoreEventLoopClosure measures the same loop through the
// closure-based API (hoisted closure, as models should write it).
func BenchmarkCoreEventLoopClosure(b *testing.B) {
	s := New()
	r := rng.New(3)
	var tick func()
	tick = func() { _, _ = s.Schedule(r.Exp(1), tick) }
	_, _ = s.Schedule(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCoreScheduleCancel measures the timeout pattern: schedule a
// deadline, cancel it before it fires, compaction included.
func BenchmarkCoreScheduleCancel(b *testing.B) {
	s := New()
	action := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, _ := s.Schedule(1e6, action)
		h.Cancel()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCoreDeepHeap measures schedule+fire with 10k concurrently
// pending events, exercising sift depth on a realistically full schedule.
func BenchmarkCoreDeepHeap(b *testing.B) {
	s := New()
	r := rng.New(9)
	s.SetHandler(func(kind, arg int32) { _, _ = s.ScheduleEvent(r.Exp(1), kind, arg) })
	for i := 0; i < 10_000; i++ {
		_, _ = s.ScheduleEvent(r.Exp(1)*1e4, 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
