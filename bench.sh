#!/bin/sh
# Core-path benchmark runner and regression artifact emitter.
#
# Runs the BenchmarkCore* suite — the DES kernel, the cluster job loop, the
# gateway metrics path, the class-aggregated megascale solver, and the
# cross-layer solve-and-simulate pipeline — with allocation reporting, runs
# the EXT11 planet-scale scaling sweep (quick mode), and converts everything
# into BENCH_core.json (schema nashlb/bench-core/v2, documented in
# EXPERIMENTS.md) via cmd/benchjson. CI runs this as a non-blocking job and
# uploads the JSON; locally it is the before/after tool for performance work.
#
# It then runs the BenchmarkServeThroughput family (gateway hot path,
# legacy comparison, end-to-end HTTP) plus the admission/parse/encode
# micro-benchmarks and merges them into BENCH_serve.json (schema 4) under
# the "throughput" key via `benchjson -serve`, which refuses to touch a
# document whose schema it does not understand.
#
# Environment knobs:
#   BENCH_COUNT  repetitions per benchmark (default 1; use 5+ for stable
#                numbers — benchjson keeps the fastest run)
#   BENCH_TIME   -benchtime per benchmark (default 1s)
#   BENCH_OUT    output path (default BENCH_core.json)
#   BENCH_SERVE  serving-throughput output path (default BENCH_serve.json)
set -eu

cd "$(dirname "$0")"

count=${BENCH_COUNT:-1}
benchtime=${BENCH_TIME:-1s}
out=${BENCH_OUT:-BENCH_core.json}
serveout=${BENCH_SERVE:-BENCH_serve.json}

tmp=$(mktemp)
ext11=$(mktemp)
servetmp=$(mktemp)
trap 'rm -f "$tmp" "$ext11" "$servetmp"' EXIT

echo "== go test -bench BenchmarkCore (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkCore' -benchmem \
    -benchtime "$benchtime" -count "$count" \
    ./internal/des ./internal/cluster ./internal/serve ./internal/megascale . | tee "$tmp"

echo "== experiments -run ext11 -quick (planet-scale scaling sweep)"
go run ./cmd/experiments -run ext11 -quick -benchcore "$ext11"

go run ./cmd/benchjson -ext11 "$ext11" <"$tmp" >"$out"
echo "bench: wrote $out"

echo "== go test -bench serving throughput (count=$count, benchtime=$benchtime)"
go test -run '^$' \
    -bench 'BenchmarkServeThroughput|BenchmarkShardedAdmission|BenchmarkParseServiceSeconds|BenchmarkAppendSubmitResponse' \
    -benchmem -benchtime "$benchtime" -count "$count" \
    ./internal/serve | tee "$servetmp"

go run ./cmd/benchjson -serve "$serveout" <"$servetmp"
echo "bench: merged throughput into $serveout"
