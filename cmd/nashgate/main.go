// Command nashgate is the live serving gateway: it routes real HTTP traffic
// across backend workers by the Nash equilibrium of the paper's load
// balancing game, with admission control, live re-equilibration from polled
// queue depths, and Prometheus-style /metrics.
//
// Gateway mode (default). Give it the backend URLs and the game (rates and
// arrivals); it solves NASH and serves:
//
//	nashgate -backends http://h1:8081,http://h2:8082 -rates 10,50 \
//	         -arrivals 2x12 [-listen :8080] [-profile nash|ps] \
//	         [-poll 500ms] [-update-every 1] [-alpha 0.2] \
//	         [-fill 100 -burst 200] [-seed 2002]
//
// The self-healing layer (on by default) probes backends, trips per-backend
// circuit breakers, re-solves the game over survivors, and sheds load when
// the surviving capacity is infeasible:
//
//	[-probe 250ms] [-breaker-failures 3] [-breaker-cooldown 1s] \
//	[-ramp-steps 3] [-degraded-rho 0.9] [-retry-budget 0.1] \
//	[-hedge-after 0]
//
// Endpoints: /submit?user=i (or X-User header) serves one request;
// /metrics is the text exposition; /routing reports the live profile;
// /backends reports breaker states, weights and probe counters;
// /healthz is a liveness probe.
//
// Backend mode (-backend) runs one worker node — an M/M/1 station serving
// exponential work at -rate through a bounded FCFS queue:
//
//	nashgate -backend -rate 50 [-listen 127.0.0.1:8081] [-queue-cap 512] \
//	         [-seed 2002]
//
// Its endpoints: /work performs one job, /queue reports the current depth.
//
// Fleet mode (-fleet) runs this gateway as one replica of a nashgate fleet:
// N gateways serve concurrently over the same backend universe, elect a
// solver leader (lowest alive id), aggregate each other's live arrival-rate
// estimates into the game's user weights, and distribute fenced routing
// tables. Backends join and leave at runtime via POST /fleet/machines on the
// control listener; -autoscale drains idle capacity automatically:
//
//	nashgate -fleet -fleet-id 0 \
//	         -fleet-peers http://g0:9090,http://g1:9090,http://g2:9090 \
//	         -fleet-listen :9090 -backends ... -rates ... -arrivals ... \
//	         [-heartbeat 50ms] [-solve-every 250ms] \
//	         [-autoscale] [-scale-low 0.3] [-scale-high 0.8] \
//	         [-scale-sustain 3] [-min-active 1]
//
// The control listener adds /fleet (replica status), /fleet/heartbeat,
// /fleet/report, /fleet/table and /fleet/machines.
//
// On SIGINT or SIGTERM every mode drains gracefully: admission stops (new
// requests get 503 + Retry-After), in-flight requests finish, and a fleet
// replica advertises the drain so peers elect around it before the process
// exits. A second signal forces immediate exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nashlb/internal/cli"
	"nashlb/internal/core"
	"nashlb/internal/fleet"
	"nashlb/internal/game"
	"nashlb/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nashgate: ")
	var (
		backendFlag  = flag.Bool("backend", false, "run a backend worker node instead of the gateway")
		listenFlag   = flag.String("listen", "127.0.0.1:0", "listen address")
		seedFlag     = flag.Uint64("seed", 2002, "seed for routing (gateway) or service-time (backend) streams")
		backendsFlag = flag.String("backends", "", "gateway: comma-separated backend base URLs")
		ratesFlag    = flag.String("rates", "", "gateway: backend service rates mu_j (jobs/s), one per backend")
		arrivalsFlag = flag.String("arrivals", "", "gateway: user arrival rates phi_i (jobs/s)")
		profileFlag  = flag.String("profile", "nash", "gateway: initial routing profile, nash or ps")
		pollFlag     = flag.Duration("poll", 0, "gateway: re-equilibration poll period (0 = static routing)")
		updateFlag   = flag.Int("update-every", 1, "gateway: play one best response every this many polls")
		alphaFlag    = flag.Float64("alpha", 0.2, "gateway: EWMA weight for queue-depth observations")
		fillFlag     = flag.Float64("fill", 0, "gateway: token-bucket fill rate (req/s; 0 disables admission)")
		burstFlag    = flag.Float64("burst", 0, "gateway: token-bucket burst size")
		timeoutFlag  = flag.Duration("timeout", 5*time.Second, "gateway: per-attempt backend timeout")
		retriesFlag  = flag.Int("retries", 2, "gateway: retries after backend transport failures")
		probeFlag    = flag.Duration("probe", 250*time.Millisecond, "gateway: health probe period (0 disables the self-healing layer)")
		failuresFlag = flag.Int("breaker-failures", 3, "gateway: consecutive failures that open a backend's breaker")
		cooldownFlag = flag.Duration("breaker-cooldown", time.Second, "gateway: open-breaker wait before a half-open trial")
		rampFlag     = flag.Int("ramp-steps", 3, "gateway: health epochs over which a recovered backend re-admits")
		degradedFlag = flag.Float64("degraded-rho", 0.9, "gateway: admitted utilization while shedding in degraded mode")
		budgetFlag   = flag.Float64("retry-budget", 0.1, "gateway: retry budget as a fraction of requests (negative disables)")
		hedgeFlag    = flag.Duration("hedge-after", 0, "gateway: hedge slow requests to a second backend after this delay (0 disables)")
		idleFlag     = flag.Int("max-idle-per-host", 0, "gateway: idle connections kept per backend (0 = default 512)")
		rateFlag     = flag.Float64("rate", 0, "backend: service rate mu (jobs/s)")
		queueCapFlag = flag.Int("queue-cap", serve.DefaultQueueCap, "backend: jobs-in-system bound")

		fleetFlag        = flag.Bool("fleet", false, "run as a fleet replica (needs -fleet-id and -fleet-peers)")
		fleetIDFlag      = flag.Int("fleet-id", 0, "fleet: this replica's id (indexes -fleet-peers)")
		fleetPeersFlag   = flag.String("fleet-peers", "", "fleet: comma-separated control URLs for every replica, ordered by id")
		fleetListenFlag  = flag.String("fleet-listen", "127.0.0.1:0", "fleet: control-plane listen address")
		heartbeatFlag    = flag.Duration("heartbeat", 50*time.Millisecond, "fleet: peer heartbeat period")
		solveEveryFlag   = flag.Duration("solve-every", 250*time.Millisecond, "fleet: leader supervision epoch")
		autoscaleFlag    = flag.Bool("autoscale", false, "fleet: drain idle capacity / activate standbys automatically")
		scaleLowFlag     = flag.Float64("scale-low", 0.3, "fleet: utilization below which the autoscaler drains")
		scaleHighFlag    = flag.Float64("scale-high", 0.8, "fleet: utilization above which the autoscaler activates")
		scaleSustainFlag = flag.Int("scale-sustain", 3, "fleet: consecutive epochs a threshold must hold before scaling")
		minActiveFlag    = flag.Int("min-active", 1, "fleet: floor on active machines")
		quorumFlag       = flag.Int("quorum", 0, "fleet: nodes (self included) this replica must heartbeat to lead (0 = strict majority)")
		durableFlag      = flag.String("fleet-durable-dir", "", "fleet: directory for the crash-durable control-plane snapshot (empty = in-memory only)")
	)
	flag.Parse()

	if *backendFlag {
		runBackend(*rateFlag, *queueCapFlag, *seedFlag, *listenFlag)
		return
	}
	if *fleetFlag {
		runFleet(fleetArgs{
			id:         *fleetIDFlag,
			peers:      *fleetPeersFlag,
			listen:     *fleetListenFlag,
			backends:   *backendsFlag,
			rates:      *ratesFlag,
			arrivals:   *arrivalsFlag,
			heartbeat:  *heartbeatFlag,
			solveEvery: *solveEveryFlag,
			quorum:     *quorumFlag,
			durableDir: *durableFlag,
			seed:       *seedFlag,
			autoscale: fleet.AutoscaleConfig{
				Enabled:   *autoscaleFlag,
				Low:       *scaleLowFlag,
				High:      *scaleHighFlag,
				Sustain:   *scaleSustainFlag,
				MinActive: *minActiveFlag,
			},
			gateway: serve.GatewayConfig{
				Seed:        *seedFlag,
				FillRate:    *fillFlag,
				Burst:       *burstFlag,
				Timeout:     *timeoutFlag,
				Retries:     *retriesFlag,
				ProbeEvery:  *probeFlag,
				Breaker:     serve.BreakerConfig{Failures: *failuresFlag, Cooldown: *cooldownFlag},
				RampSteps:   *rampFlag,
				DegradedRho: *degradedFlag,
				RetryBudget: *budgetFlag,
				HedgeAfter:  *hedgeFlag,
				Addr:        *listenFlag,
			},
		})
		return
	}
	runGateway(gatewayArgs{
		backends: *backendsFlag,
		rates:    *ratesFlag,
		arrivals: *arrivalsFlag,
		profile:  *profileFlag,
		listen:   *listenFlag,
		seed:     *seedFlag,
		poll:     *pollFlag,
		update:   *updateFlag,
		alpha:    *alphaFlag,
		fill:     *fillFlag,
		burst:    *burstFlag,
		timeout:  *timeoutFlag,
		retries:  *retriesFlag,
		probe:    *probeFlag,
		failures: *failuresFlag,
		cooldown: *cooldownFlag,
		ramp:     *rampFlag,
		degraded: *degradedFlag,
		budget:   *budgetFlag,
		hedge:    *hedgeFlag,
		maxIdle:  *idleFlag,
	})
}

func runBackend(rate float64, queueCap int, seed uint64, listen string) {
	if rate <= 0 {
		log.Fatal("-backend needs -rate > 0")
	}
	b, err := serve.NewBackend(serve.BackendConfig{
		Rate:     rate,
		QueueCap: queueCap,
		Seed:     seed,
		Addr:     listen,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend serving mu=%g on %s\n", rate, b.URL())
	waitForInterrupt()
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}
}

type gatewayArgs struct {
	backends, rates, arrivals, profile, listen string
	seed                                       uint64
	poll                                       time.Duration
	update                                     int
	alpha, fill, burst                         float64
	timeout                                    time.Duration
	retries                                    int
	probe, cooldown, hedge                     time.Duration
	failures, ramp                             int
	degraded, budget                           float64
	maxIdle                                    int
}

func runGateway(a gatewayArgs) {
	if a.backends == "" {
		log.Fatal("gateway mode needs -backends (or use -backend for a worker)")
	}
	var urls []string
	for _, u := range strings.Split(a.backends, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			log.Fatal("-backends: empty URL in list")
		}
		urls = append(urls, strings.TrimSuffix(u, "/"))
	}
	rates, err := cli.ParseFloats(a.rates)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	arrivals, err := cli.ParseFloats(a.arrivals)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	sys, err := game.NewSystem(rates, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	var profile game.Profile
	switch a.profile {
	case "ps":
		profile = game.ProportionalProfile(sys)
		fmt.Printf("routing by proportional profile, predicted D = %.6gs\n",
			sys.OverallResponseTime(profile))
	case "nash":
		res, err := core.Solve(sys, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("NASH did not converge in %d rounds", res.Rounds)
		}
		profile = res.Profile
		fmt.Printf("NASH converged in %d rounds, predicted D = %.6gs\n",
			res.Rounds, res.OverallTime)
	default:
		log.Fatalf("-profile %q: want nash or ps", a.profile)
	}

	g, err := serve.NewGateway(serve.GatewayConfig{
		Backends:    urls,
		Rates:       rates,
		Arrivals:    arrivals,
		Profile:     profile,
		Seed:        a.seed,
		FillRate:    a.fill,
		Burst:       a.burst,
		PollEvery:   a.poll,
		UpdateEvery: a.update,
		Alpha:       a.alpha,
		Timeout:     a.timeout,
		Retries:     a.retries,
		ProbeEvery:  a.probe,
		Breaker:     serve.BreakerConfig{Failures: a.failures, Cooldown: a.cooldown},
		RampSteps:   a.ramp,
		DegradedRho: a.degraded,
		RetryBudget: a.budget,
		HedgeAfter:  a.hedge,

		MaxIdleConnsPerHost: a.maxIdle,

		Addr: a.listen,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway serving %d users over %d backends on %s\n",
		len(arrivals), len(urls), g.URL())
	waitForInterrupt()
	// Graceful drain: refuse new admissions immediately, then let Close wait
	// out the in-flight requests.
	g.Drain()
	if err := g.Close(); err != nil {
		log.Fatal(err)
	}
}

// fleetArgs bundles the fleet-mode flags.
type fleetArgs struct {
	id         int
	peers      string
	listen     string
	backends   string
	rates      string
	arrivals   string
	heartbeat  time.Duration
	solveEvery time.Duration
	quorum     int
	durableDir string
	seed       uint64
	autoscale  fleet.AutoscaleConfig
	gateway    serve.GatewayConfig
}

func runFleet(a fleetArgs) {
	if a.backends == "" || a.peers == "" {
		log.Fatal("fleet mode needs -backends, -rates, -arrivals and -fleet-peers")
	}
	rates, err := cli.ParseFloats(a.rates)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	arrivals, err := cli.ParseFloats(a.arrivals)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	var urls []string
	for _, u := range strings.Split(a.backends, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			log.Fatal("-backends: empty URL in list")
		}
		urls = append(urls, strings.TrimSuffix(u, "/"))
	}
	if len(urls) != len(rates) {
		log.Fatalf("%d backends but %d rates", len(urls), len(rates))
	}
	machines := make([]fleet.Machine, len(urls))
	for j, u := range urls {
		machines[j] = fleet.Machine{URL: u, Rate: rates[j], Active: true}
	}
	var peers []string
	for _, p := range strings.Split(a.peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			log.Fatal("-fleet-peers: empty URL in list")
		}
		peers = append(peers, strings.TrimSuffix(p, "/"))
	}

	n, err := fleet.NewNode(fleet.Config{
		ID:             a.id,
		Machines:       machines,
		Arrivals:       arrivals,
		Gateway:        a.gateway,
		HeartbeatEvery: a.heartbeat,
		SolveEvery:     a.solveEvery,
		Quorum:         a.quorum,
		DurableDir:     a.durableDir,
		Seed:           a.seed,
		Autoscale:      a.autoscale,
		Addr:           a.listen,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := n.Start(peers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet replica %d of %d: gateway %s, control %s\n",
		a.id, len(peers), n.GatewayURL(), n.ControlURL())
	waitForInterrupt()
	// Stop drains the gateway, advertises the drain on the heartbeat so
	// peers elect around this replica, finishes in-flight requests, and
	// only then closes the servers — the fleet deregistration.
	if err := n.Stop(); err != nil {
		log.Fatal(err)
	}
}

// waitForInterrupt blocks until SIGINT or SIGTERM. A second signal during
// the graceful drain forces an immediate exit.
func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("shutting down (signal again to force)")
	go func() {
		<-ch
		fmt.Println("forced exit")
		os.Exit(1)
	}()
}
