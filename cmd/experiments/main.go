// Command experiments regenerates the paper's evaluation artifacts — Table
// 1 and Figures 2-6 — plus the DESIGN.md ablations ABL1-ABL6 and extensions
// EXT1-EXT12. Results print as aligned text tables; -csv writes one CSV per
// artifact into a directory and -plot adds ASCII charts for the figures.
// EXT8-EXT10 and EXT12 serve real HTTP traffic through the nashgate gateway
// (EXT10 and EXT12 through a whole gateway fleet) and so take their live
// windows in wall-clock time; -benchjson additionally writes their results
// in machine-readable form (BENCH_serve.json).
//
// Usage:
//
//	experiments -run all                # everything, analytic mode
//	experiments -run fig4 -sim          # Figure 4 with DES replications
//	experiments -run fig2,fig3 -plot    # a subset, with charts
//	experiments -run all -sim -quick    # reduced simulation fidelity
//	experiments -csv out/               # also write CSV series
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"nashlb/internal/experiments"
	"nashlb/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runFlag     = flag.String("run", "all", "comma list of artifacts: tab1,fig2,fig3,fig4,fig5,fig6,abl1..abl6,ext1..ext12 or all")
		simFlag     = flag.Bool("sim", false, "use discrete-event simulation for fig4/fig5/fig6 (slower, adds CIs)")
		quickFlag   = flag.Bool("quick", false, "reduced simulation fidelity (short runs, 3 replications)")
		csvFlag     = flag.String("csv", "", "directory to write CSV files into (created if missing)")
		plotFlag    = flag.Bool("plot", false, "also render ASCII charts for fig2/fig3/fig4/fig6")
		utilFlag    = flag.Float64("util", 0.6, "system utilization for fig2/fig5/fig6 and the ablations")
		seedFlag    = flag.Uint64("seed", 2002, "random seed for simulated runs")
		workersFlag = flag.Int("workers", 0, "replication-engine pool size (0 = GOMAXPROCS); results are identical for any value")
		benchFlag   = flag.String("benchjson", "", "file to write the machine-readable EXT8/EXT9/EXT10/EXT12 results into (implies live serving)")
		coreFlag    = flag.String("benchcore", "", "file to write the machine-readable EXT11 scaling sweep into (implies ext11)")
	)
	flag.Parse()

	params := experiments.PaperSim()
	if *quickFlag {
		params = experiments.QuickSim()
	}
	params.Seed = *seedFlag
	params.Workers = *workersFlag

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.ToLower(strings.TrimSpace(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	emit := func(name string, t *report.Table) {
		fmt.Println(t.String())
		if *csvFlag != "" {
			if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvFlag, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [csv written to %s]\n\n", path)
		}
	}

	ran := 0
	if selected("tab1") {
		emit("table1", experiments.Table1())
		ran++
	}
	if selected("fig2") {
		res, err := experiments.Fig2(*utilFlag, 1e-6)
		if err != nil {
			log.Fatalf("fig2: %v", err)
		}
		emit("fig2_norm_vs_iteration", res.Table())
		plotIf(*plotFlag, res)
		ran++
	}
	if selected("fig3") {
		res, err := experiments.Fig3(*utilFlag, 1e-4)
		if err != nil {
			log.Fatalf("fig3: %v", err)
		}
		emit("fig3_iterations_vs_users", res.Table())
		plotIf(*plotFlag, res)
		ran++
	}
	if selected("fig4") {
		res, err := experiments.Fig4(params, *simFlag)
		if err != nil {
			log.Fatalf("fig4: %v", err)
		}
		emit("fig4_utilization_sweep", res.Table())
		plotIf(*plotFlag, res)
		ran++
	}
	if selected("fig5") {
		res, err := experiments.Fig5(*utilFlag, params, *simFlag)
		if err != nil {
			log.Fatalf("fig5: %v", err)
		}
		emit("fig5_per_user", res.Table())
		ran++
	}
	if selected("fig6") {
		res, err := experiments.Fig6(*utilFlag, nil, params, *simFlag)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		emit("fig6_heterogeneity", res.Table())
		plotIf(*plotFlag, res)
		ran++
	}
	if selected("abl1") {
		res, err := experiments.Abl1(*utilFlag)
		if err != nil {
			log.Fatalf("abl1: %v", err)
		}
		emit("abl1_initialization", res.Table())
		ran++
	}
	if selected("abl2") {
		res, err := experiments.Abl2(*utilFlag)
		if err != nil {
			log.Fatalf("abl2: %v", err)
		}
		emit("abl2_wardrop_solvers", res.Table())
		ran++
	}
	if selected("abl3") {
		res, err := experiments.Abl3()
		if err != nil {
			log.Fatalf("abl3: %v", err)
		}
		emit("abl3_gos_assignment", res.Table())
		ran++
	}
	if selected("abl4") {
		res, err := experiments.Abl4(*utilFlag)
		if err != nil {
			log.Fatalf("abl4: %v", err)
		}
		emit("abl4_execution_modes", res.Table())
		ran++
	}
	if selected("abl5") {
		res, err := experiments.Abl5(*utilFlag, params.Seed)
		if err != nil {
			log.Fatalf("abl5: %v", err)
		}
		emit("abl5_rate_estimation", res.Table())
		ran++
	}
	if selected("abl6") {
		res, err := experiments.Abl6(*utilFlag)
		if err != nil {
			log.Fatalf("abl6: %v", err)
		}
		emit("abl6_update_order", res.Table())
		ran++
	}
	if selected("ext1") {
		res, err := experiments.Ext1()
		if err != nil {
			log.Fatalf("ext1: %v", err)
		}
		emit("ext1_price_of_anarchy", res.Table())
		ran++
	}
	if selected("ext2") {
		res, err := experiments.Ext2(*utilFlag, params)
		if err != nil {
			log.Fatalf("ext2: %v", err)
		}
		emit("ext2_burstiness", res.Table())
		ran++
	}
	if selected("ext3") {
		res, err := experiments.Ext3(*utilFlag, params)
		if err != nil {
			log.Fatalf("ext3: %v", err)
		}
		emit("ext3_service_variability", res.Table())
		ran++
	}
	if selected("ext4") {
		res, err := experiments.Ext4(*utilFlag)
		if err != nil {
			log.Fatalf("ext4: %v", err)
		}
		emit("ext4_scalability", res.Table())
		ran++
	}
	if selected("ext5") {
		res, err := experiments.Ext5(*utilFlag, 2400, params.Seed)
		if err != nil {
			log.Fatalf("ext5: %v", err)
		}
		emit("ext5_online_rebalancing", res.Table())
		ran++
	}
	if selected("ext6") {
		res, err := experiments.Ext6(*utilFlag, params)
		if err != nil {
			log.Fatalf("ext6: %v", err)
		}
		emit("ext6_static_vs_dynamic", res.Table())
		ran++
	}
	if selected("ext7") {
		res, err := experiments.Ext7(*utilFlag, params.Seed, *quickFlag)
		if err != nil {
			log.Fatalf("ext7: %v", err)
		}
		emit("ext7_fault_tolerance", res.Table())
		ran++
	}
	// The serving experiments share the BENCH_serve.json document:
	// -benchjson implies all of them and writes the combined result.
	var ext8Res *experiments.Ext8Result
	var ext9Res *experiments.Ext9Result
	var ext10Res *experiments.Ext10Result
	var ext12Res *experiments.Ext12Result
	if selected("ext8") || *benchFlag != "" {
		res, err := experiments.Ext8(params.Seed, *quickFlag)
		if err != nil {
			log.Fatalf("ext8: %v", err)
		}
		emit("ext8_live_serving", res.Table())
		ext8Res = res
		ran++
	}
	if selected("ext9") || *benchFlag != "" {
		res, err := experiments.Ext9(params.Seed, *quickFlag)
		if err != nil {
			log.Fatalf("ext9: %v", err)
		}
		emit("ext9_self_healing", res.Table())
		ext9Res = res
		ran++
	}
	if selected("ext10") || *benchFlag != "" {
		res, err := experiments.Ext10(params.Seed, *quickFlag)
		if err != nil {
			log.Fatalf("ext10: %v", err)
		}
		emit("ext10_fleet", res.Table())
		ext10Res = res
		ran++
	}
	if selected("ext12") || *benchFlag != "" {
		res, err := experiments.Ext12(params.Seed, *quickFlag)
		if err != nil {
			log.Fatalf("ext12: %v", err)
		}
		emit("ext12_partition", res.Table())
		ext12Res = res
		ran++
	}
	if selected("ext11") || *coreFlag != "" {
		res, err := experiments.Ext11(*quickFlag)
		if err != nil {
			log.Fatalf("ext11: %v", err)
		}
		emit("ext11_megascale", res.Table())
		if *coreFlag != "" {
			data, err := res.BenchJSON()
			if err != nil {
				log.Fatalf("benchcore: %v", err)
			}
			if err := os.WriteFile(*coreFlag, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [ext11 bench json written to %s]\n\n", *coreFlag)
		}
		ran++
	}
	if *benchFlag != "" {
		data, err := experiments.ServeBenchJSON(ext8Res, ext9Res, ext10Res, ext12Res)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if err := os.WriteFile(*benchFlag, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [bench json written to %s]\n\n", *benchFlag)
	}
	if ran == 0 {
		log.Fatalf("-run: nothing matched %q", *runFlag)
	}
}

// plotter is any experiment result with an ASCII chart.
type plotter interface {
	Plot() (string, error)
}

// plotIf renders r's chart when enabled.
func plotIf(enabled bool, r plotter) {
	if !enabled {
		return
	}
	out, err := r.Plot()
	if err != nil {
		log.Fatalf("plot: %v", err)
	}
	fmt.Println(out)
}
