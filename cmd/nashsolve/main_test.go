package main

import (
	"strings"
	"testing"
)

func TestBuildClassSystemFromClasses(t *testing.T) {
	cs, err := buildClassSystem("4x100", "ignored-when-classes-set", "1000000x0.0001,3x5,2.5")
	if err != nil {
		t.Fatalf("buildClassSystem: %v", err)
	}
	if got := cs.MachineCount(); got != 4 {
		t.Fatalf("machines = %d, want 4", got)
	}
	if got := cs.ClassCount(); got != 3 {
		t.Fatalf("classes = %d, want 3", got)
	}
	if got := cs.Users(); got != 1000004 {
		t.Fatalf("users = %d, want 1000004", got)
	}
	wantCounts := []int{1000000, 3, 1}
	wantPhis := []float64{0.0001, 5, 2.5}
	for c, cl := range cs.Classes {
		if cl.Count != wantCounts[c] || cl.Phi != wantPhis[c] {
			t.Errorf("class %d = {Count: %d, Phi: %g}, want {%d, %g}",
				c, cl.Count, cl.Phi, wantCounts[c], wantPhis[c])
		}
	}
}

func TestBuildClassSystemAggregatesArrivals(t *testing.T) {
	cs, err := buildClassSystem("6x10,5x20,3x50,2x100", "10x30.6", "")
	if err != nil {
		t.Fatalf("buildClassSystem: %v", err)
	}
	if got := cs.ClassCount(); got != 1 {
		t.Fatalf("classes = %d, want 1 (all ten users share one arrival rate)", got)
	}
	if cl := cs.Classes[0]; cl.Count != 10 || cl.Phi != 30.6 {
		t.Fatalf("class 0 = {Count: %d, Phi: %g}, want {10, 30.6}", cl.Count, cl.Phi)
	}
}

func TestBuildClassSystemErrors(t *testing.T) {
	cases := []struct {
		name, rates, arrivals, classes, want string
	}{
		{"bad rates", "abc", "1", "", "-rates"},
		{"bad classes", "4x100", "", "0x5", "-classes"},
		{"bad arrivals", "4x100", "oops", "", "-arrivals"},
		{"overloaded classes", "2x10", "", "3x10", "total arrival rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildClassSystem(tc.rates, tc.arrivals, tc.classes)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
