// Command nashsolve computes the Nash equilibrium of a load-balancing game
// and, optionally, compares it against the PS, GOS and IOS baselines.
//
// Usage:
//
//	nashsolve -rates 6x10,5x20,3x50,2x100 -arrivals 10x30.6 [-init P|0]
//	          [-eps 1e-9] [-compare] [-profile]
//	nashsolve -rates 100x100 -classes 1000000x0.05,5000x1.2
//
// Rates and arrivals are comma-separated jobs/second, with the COUNTxVALUE
// repetition shorthand. The -classes flag describes the population in
// aggregated form: "1000000x0.05" is one million identical users, kept as a
// single user class and never expanded, so planet-scale populations solve in
// milliseconds. -arrivals input is aggregated into classes internally too
// (users sharing an arrival rate share a class), so output is always a
// per-class summary rather than a row per user.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nashlb"
	"nashlb/internal/cli"
	"nashlb/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nashsolve: ")
	var (
		ratesFlag    = flag.String("rates", "6x10,5x20,3x50,2x100", "computer processing rates (jobs/s, comma list, COUNTxVALUE allowed)")
		arrivalsFlag = flag.String("arrivals", "10x30.6", "user arrival rates (jobs/s, comma list, COUNTxVALUE allowed)")
		classesFlag  = flag.String("classes", "", "user classes as COUNTxPHI entries (kept aggregated; overrides -arrivals)")
		initFlag     = flag.String("init", "P", "initialization: P (NASH_P, proportional) or 0 (NASH_0)")
		epsFlag      = flag.Float64("eps", 0, "convergence tolerance (0 = library default)")
		compareFlag  = flag.Bool("compare", false, "also evaluate the PS, GOS and IOS baselines")
		profileFlag  = flag.Bool("profile", false, "print the equilibrium strategy profile (one sparse row per class)")
		jsonFlag     = flag.Bool("json", false, "emit the result as JSON instead of tables")
	)
	flag.Parse()

	cs, err := buildClassSystem(*ratesFlag, *arrivalsFlag, *classesFlag)
	if err != nil {
		log.Fatal(err)
	}

	init := nashlb.InitProportional
	switch *initFlag {
	case "P", "p":
	case "0":
		init = nashlb.InitZero
	default:
		log.Fatalf("-init: unknown initialization %q", *initFlag)
	}

	res, err := nashlb.SolveNashClasses(cs, nashlb.ClassOptions{Init: init, Epsilon: *epsFlag})
	if err != nil {
		log.Fatal(err)
	}

	weights := make([]float64, cs.ClassCount())
	for c, cl := range cs.Classes {
		weights[c] = float64(cl.Count)
	}
	fairness := nashlb.JainFairnessWeighted(res.ClassTimes, weights)

	var schemes []jsonScheme
	if *compareFlag {
		schemes, err = compareSchemes(cs, res, fairness)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *jsonFlag {
		out := jsonResult{
			Computers:   cs.Rates,
			Users:       cs.Users(),
			Utilization: cs.Utilization(),
			Init:        init.String(),
			Rounds:      res.Rounds,
			Converged:   res.Converged,
			OverallTime: res.OverallTime,
			Fairness:    fairness,
			Schemes:     schemes,
		}
		for c, cl := range cs.Classes {
			jc := jsonClass{Count: cl.Count, Phi: cl.Phi, Weight: cl.Weight(), Time: res.ClassTimes[c]}
			if *profileFlag {
				cols, vals := res.Profile.Row(c)
				jc.Machines = cols
				jc.Fractions = vals
			}
			out.Classes = append(out.Classes, jc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("system: %d computers (%.4g jobs/s total), %d users in %d classes (%.4g jobs/s, utilization %.1f%%)\n",
		cs.MachineCount(), cs.TotalCapacity(), cs.Users(), cs.ClassCount(), cs.TotalArrival(), 100*cs.Utilization())
	fmt.Printf("equilibrium (%s): %d rounds, overall expected response time %.6g s, fairness %.4f\n",
		init, res.Rounds, res.OverallTime, fairness)

	ct := report.NewTable("Per-class expected response time", "class", "users", "phi (jobs/s)", "weight (jobs/s)", "D (s)")
	for c, cl := range cs.Classes {
		ct.AddRow(fmt.Sprint(c+1), fmt.Sprint(cl.Count), report.F(cl.Phi, 5), report.F(cl.Weight(), 5), report.F(res.ClassTimes[c], 6))
	}
	fmt.Println()
	fmt.Print(ct.String())

	if *profileFlag {
		pt := report.NewTable("Equilibrium strategy profile (one sparse row per class)", "class", "machine:fraction")
		for c := 0; c < cs.ClassCount(); c++ {
			cols, vals := res.Profile.Row(c)
			row := ""
			for k, j := range cols {
				if vals[k] == 0 {
					continue
				}
				if row != "" {
					row += " "
				}
				row += fmt.Sprintf("%d:%s", j, report.Fix(vals[k], 4))
			}
			pt.AddRow(fmt.Sprint(c+1), row)
		}
		fmt.Println()
		fmt.Print(pt.String())
	}

	if *compareFlag {
		st := report.NewTable("Scheme comparison (analytic)", "scheme", "overall D (s)", "fairness")
		for _, s := range schemes {
			st.AddRow(s.Name, report.F(s.OverallTime, 6), report.Fix(s.Fairness, 4))
		}
		fmt.Println()
		fmt.Print(st.String())
	}
	os.Exit(0)
}

// buildClassSystem assembles the class-aggregated system from the flag specs.
// A non-empty -classes spec wins; otherwise the dense -arrivals list is
// aggregated so that users sharing an arrival rate form one class.
func buildClassSystem(ratesSpec, arrivalsSpec, classesSpec string) (*nashlb.ClassSystem, error) {
	rates, err := cli.ParseFloats(ratesSpec)
	if err != nil {
		return nil, fmt.Errorf("-rates: %w", err)
	}
	if classesSpec != "" {
		specs, err := cli.ParseClasses(classesSpec)
		if err != nil {
			return nil, fmt.Errorf("-classes: %w", err)
		}
		classes := make([]nashlb.UserClass, len(specs))
		for i, sp := range specs {
			classes[i] = nashlb.UserClass{Phi: sp.Phi, Count: sp.Count}
		}
		return nashlb.NewClassSystem(rates, classes)
	}
	arrivals, err := cli.ParseFloats(arrivalsSpec)
	if err != nil {
		return nil, fmt.Errorf("-arrivals: %w", err)
	}
	sys, err := nashlb.NewSystem(rates, arrivals)
	if err != nil {
		return nil, err
	}
	cs, _ := nashlb.ClassifyUsers(sys)
	return cs, nil
}

// compareSchemes evaluates the baselines. NASH comes from the class solve
// itself; PS, GOS and IOS run on a one-user-per-class aggregate system (each
// class collapsed to a single user carrying its total weight). Their overall
// response times are exact — all three distribute load as a function of the
// total arrival rate only — while GOS's sequential-fill fairness is computed
// over classes rather than individual members.
func compareSchemes(cs *nashlb.ClassSystem, res *nashlb.ClassResult, nashFairness float64) ([]jsonScheme, error) {
	out := []jsonScheme{{Name: "NASH", OverallTime: res.OverallTime, Fairness: nashFairness}}
	agg := make([]float64, cs.ClassCount())
	for c, cl := range cs.Classes {
		if cl.Machines != nil {
			return nil, fmt.Errorf("-compare: class %d has a machine constraint; baselines are unconstrained", c)
		}
		agg[c] = cl.Weight()
	}
	sys, err := nashlb.NewSystem(cs.Rates, agg)
	if err != nil {
		return nil, err
	}
	for _, s := range nashlb.AllSchemes() {
		if s.Name() == "NASH" {
			continue // the aggregate system plays a different game; use the class solve
		}
		ev, err := nashlb.RunScheme(s, sys)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		out = append(out, jsonScheme{Name: ev.Scheme, OverallTime: ev.OverallTime, Fairness: ev.Fairness})
	}
	return out, nil
}

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Computers   []float64    `json:"computers"`
	Classes     []jsonClass  `json:"classes"`
	Users       int64        `json:"users"`
	Utilization float64      `json:"utilization"`
	Init        string       `json:"init"`
	Rounds      int          `json:"rounds"`
	Converged   bool         `json:"converged"`
	OverallTime float64      `json:"overall_time_s"`
	Fairness    float64      `json:"fairness"`
	Schemes     []jsonScheme `json:"schemes,omitempty"`
}

// jsonClass is one user class in the -json output.
type jsonClass struct {
	Count     int       `json:"count"`
	Phi       float64   `json:"phi"`
	Weight    float64   `json:"weight"`
	Time      float64   `json:"time_s"`
	Machines  []int32   `json:"machines,omitempty"`
	Fractions []float64 `json:"fractions,omitempty"`
}

// jsonScheme is one baseline's evaluation in the -json output.
type jsonScheme struct {
	Name        string  `json:"name"`
	OverallTime float64 `json:"overall_time_s"`
	Fairness    float64 `json:"fairness"`
}
