// Command nashsolve computes the Nash equilibrium of a load-balancing game
// and, optionally, compares it against the PS, GOS and IOS baselines.
//
// Usage:
//
//	nashsolve -rates 6x10,5x20,3x50,2x100 -arrivals 10x30.6 [-init P|0]
//	          [-eps 1e-9] [-compare] [-profile]
//
// Rates and arrivals are comma-separated jobs/second, with the COUNTxVALUE
// repetition shorthand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nashlb"
	"nashlb/internal/cli"
	"nashlb/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nashsolve: ")
	var (
		ratesFlag    = flag.String("rates", "6x10,5x20,3x50,2x100", "computer processing rates (jobs/s, comma list, COUNTxVALUE allowed)")
		arrivalsFlag = flag.String("arrivals", "10x30.6", "user arrival rates (jobs/s, comma list, COUNTxVALUE allowed)")
		initFlag     = flag.String("init", "P", "initialization: P (NASH_P, proportional) or 0 (NASH_0)")
		epsFlag      = flag.Float64("eps", 0, "convergence tolerance (0 = library default)")
		compareFlag  = flag.Bool("compare", false, "also evaluate the PS, GOS and IOS baselines")
		profileFlag  = flag.Bool("profile", false, "print the full equilibrium strategy profile")
		jsonFlag     = flag.Bool("json", false, "emit the result as JSON instead of tables")
	)
	flag.Parse()

	rates, err := cli.ParseFloats(*ratesFlag)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	arrivals, err := cli.ParseFloats(*arrivalsFlag)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	sys, err := nashlb.NewSystem(rates, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	init := nashlb.InitProportional
	switch *initFlag {
	case "P", "p":
	case "0":
		init = nashlb.InitZero
	default:
		log.Fatalf("-init: unknown initialization %q", *initFlag)
	}

	res, err := nashlb.SolveNash(sys, nashlb.NashOptions{Init: init, Epsilon: *epsFlag})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonFlag {
		out := jsonResult{
			Computers:   sys.Rates,
			Arrivals:    sys.Arrivals,
			Utilization: sys.Utilization(),
			Init:        init.String(),
			Rounds:      res.Rounds,
			OverallTime: res.OverallTime,
			UserTimes:   res.UserTimes,
			Fairness:    nashlb.JainFairness(res.UserTimes),
		}
		if *profileFlag {
			out.Profile = make([][]float64, len(res.Profile))
			for i := range res.Profile {
				out.Profile[i] = res.Profile[i]
			}
		}
		if *compareFlag {
			for _, s := range nashlb.AllSchemes() {
				ev, err := nashlb.RunScheme(s, sys)
				if err != nil {
					log.Fatalf("%s: %v", s.Name(), err)
				}
				out.Schemes = append(out.Schemes, jsonScheme{
					Name: ev.Scheme, OverallTime: ev.OverallTime, Fairness: ev.Fairness,
				})
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("system: %d computers (%.4g jobs/s total), %d users (%.4g jobs/s, utilization %.1f%%)\n",
		sys.Computers(), sys.TotalCapacity(), sys.Users(), sys.TotalArrival(), 100*sys.Utilization())
	fmt.Printf("equilibrium (%s): %d rounds, overall expected response time %.6g s, fairness %.4f\n",
		init, res.Rounds, res.OverallTime, nashlb.JainFairness(res.UserTimes))

	ut := report.NewTable("Per-user expected response time", "user", "phi (jobs/s)", "D_i (s)")
	for i, d := range res.UserTimes {
		ut.AddRow(fmt.Sprint(i+1), report.F(sys.Arrivals[i], 5), report.F(d, 6))
	}
	fmt.Println()
	fmt.Print(ut.String())

	if *profileFlag {
		pt := report.NewTable("Equilibrium strategy profile (rows = users, columns = computers)", "user", "fractions")
		for i, s := range res.Profile {
			row := ""
			for j, f := range s {
				if j > 0 {
					row += " "
				}
				row += report.Fix(f, 4)
			}
			pt.AddRow(fmt.Sprint(i+1), row)
		}
		fmt.Println()
		fmt.Print(pt.String())
	}

	if *compareFlag {
		ct := report.NewTable("Scheme comparison (analytic)", "scheme", "overall D (s)", "fairness")
		for _, s := range nashlb.AllSchemes() {
			ev, err := nashlb.RunScheme(s, sys)
			if err != nil {
				log.Fatalf("%s: %v", s.Name(), err)
			}
			ct.AddRow(ev.Scheme, report.F(ev.OverallTime, 6), report.Fix(ev.Fairness, 4))
		}
		fmt.Println()
		fmt.Print(ct.String())
	}
	os.Exit(0)
}

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Computers   []float64    `json:"computers"`
	Arrivals    []float64    `json:"arrivals"`
	Utilization float64      `json:"utilization"`
	Init        string       `json:"init"`
	Rounds      int          `json:"rounds"`
	OverallTime float64      `json:"overall_time_s"`
	UserTimes   []float64    `json:"user_times_s"`
	Fairness    float64      `json:"fairness"`
	Profile     [][]float64  `json:"profile,omitempty"`
	Schemes     []jsonScheme `json:"schemes,omitempty"`
}

// jsonScheme is one baseline's evaluation in the -json output.
type jsonScheme struct {
	Name        string  `json:"name"`
	OverallTime float64 `json:"overall_time_s"`
	Fairness    float64 `json:"fairness"`
}
