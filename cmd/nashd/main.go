// Command nashd runs the paper's NASH algorithm as an actual distributed
// protocol. Three modes:
//
// demo (default) — one process, one goroutine per user, loopback TCP ring:
//
//	nashd -rates 6x10,5x20,3x50,2x100 -arrivals 10x30.6 [-eps 1e-9] [-verify]
//
// Adding -supervise runs the demo under the fault supervisor with seeded
// chaos injection (token recovery, node ejection, crash-then-restart):
//
//	nashd -supervise -drop 0.05 -dup 0.1 -delay 0.1 -reorder 0.05 -verify
//	nashd -supervise -crash 7 -crash-after 4            # permanent crash: ejection
//	nashd -supervise -crash 4 -crash-after 4 -restart   # crash then rejoin
//
// state — the cluster-state service (the deployment analogue of the paper's
// "inspect the run queue of each computer"):
//
//	nashd -mode state -listen 127.0.0.1:7000 -rates ... -arrivals ...
//
// node — one user node; point it at the state service, give it a listen
// address and its successor's ring address. Start the nodes in any order
// (node 0 retries dialing its successor); node 0 leads:
//
//	nashd -mode node -id 0 -users 3 -arrival 30 -state 127.0.0.1:7000 \
//	      -listen 127.0.0.1:7100 -next 127.0.0.1:7101
//
// Node mode accepts -recv-timeout (liveness guard), -recover (leader only:
// re-inject lost tokens instead of failing) and -epoch (bump when
// restarting a crashed node so the ring accepts its restarted sequence
// numbers).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nashlb"
	"nashlb/internal/cli"
	"nashlb/internal/core"
	"nashlb/internal/dist"
	"nashlb/internal/game"
	"nashlb/internal/report"
	"nashlb/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nashd: ")
	var (
		modeFlag     = flag.String("mode", "demo", "demo, state or node")
		ratesFlag    = flag.String("rates", "6x10,5x20,3x50,2x100", "computer processing rates (jobs/s; demo and state modes)")
		arrivalsFlag = flag.String("arrivals", "10x30.6", "user arrival rates (jobs/s; demo and state modes)")
		epsFlag      = flag.Float64("eps", 0, "norm acceptance tolerance (0 = library default)")
		verifyFlag   = flag.Bool("verify", false, "verify the result is a Nash equilibrium (demo mode)")
		listenFlag   = flag.String("listen", "127.0.0.1:0", "listen address (state and node modes)")
		stateFlag    = flag.String("state", "", "state service address (node mode)")
		nextFlag     = flag.String("next", "", "successor node's ring address (node mode)")
		idFlag       = flag.Int("id", 0, "this node's 0-based id (node mode)")
		usersFlag    = flag.Int("users", 0, "ring size (node mode)")
		arrivalFlag  = flag.Float64("arrival", 0, "this user's arrival rate (node mode)")

		superviseFlag    = flag.Bool("supervise", false, "run the demo under the fault supervisor (in-process ring with chaos injection)")
		dropFlag         = flag.Float64("drop", 0, "chaos: per-message drop probability (supervised demo)")
		dupFlag          = flag.Float64("dup", 0, "chaos: per-message duplication probability (supervised demo)")
		delayFlag        = flag.Float64("delay", 0, "chaos: per-message delay probability (supervised demo)")
		delayMaxFlag     = flag.Duration("delay-max", 2*time.Millisecond, "chaos: maximum injected delay (supervised demo)")
		reorderFlag      = flag.Float64("reorder", 0, "chaos: per-message reorder probability (supervised demo)")
		crashFlag        = flag.Int("crash", -1, "chaos: node id to crash (supervised demo; -1 = none, node 0 cannot crash)")
		crashAfterFlag   = flag.Int("crash-after", 4, "chaos: crash the node after this many received tokens (supervised demo)")
		restartFlag      = flag.Bool("restart", false, "restart the crashed node instead of ejecting it (supervised demo)")
		restartDelayFlag = flag.Duration("restart-delay", 5*time.Millisecond, "downtime before a restart (supervised demo)")
		chaosSeedFlag    = flag.Uint64("chaos-seed", 2002, "seed for the chaos fault streams (supervised demo)")
		recvTimeoutFlag  = flag.Duration("recv-timeout", 0, "liveness deadline: supervised-demo stall detection (default 250ms) or node-mode receive guard (0 = off)")
		maxMissesFlag    = flag.Int("max-misses", 0, "generations a node may miss before ejection (supervised demo; 0 = default 3)")
		recoverFlag      = flag.Bool("recover", false, "node mode, leader only: re-inject lost tokens instead of failing (needs -recv-timeout)")
		epochFlag        = flag.Uint64("epoch", 0, "node mode: restart incarnation; bump when restarting a crashed node")
	)
	flag.Parse()

	switch *modeFlag {
	case "demo":
		if *superviseFlag {
			runSupervised(*ratesFlag, *arrivalsFlag, *epsFlag, *verifyFlag, supervisedConfig{
				drop: *dropFlag, dup: *dupFlag, delay: *delayFlag, delayMax: *delayMaxFlag,
				reorder: *reorderFlag, crash: *crashFlag, crashAfter: *crashAfterFlag,
				restart: *restartFlag, restartDelay: *restartDelayFlag, seed: *chaosSeedFlag,
				recvTimeout: *recvTimeoutFlag, maxMisses: *maxMissesFlag,
			})
			return
		}
		runDemo(*ratesFlag, *arrivalsFlag, *epsFlag, *verifyFlag)
	case "state":
		runState(*ratesFlag, *arrivalsFlag, *listenFlag)
	case "node":
		runNode(nodeParams{
			id: *idFlag, users: *usersFlag, arrival: *arrivalFlag,
			stateAddr: *stateFlag, listen: *listenFlag, next: *nextFlag, eps: *epsFlag,
			recvTimeout: *recvTimeoutFlag, recover: *recoverFlag, epoch: *epochFlag,
		})
	default:
		log.Fatalf("-mode: unknown mode %q (want demo, state or node)", *modeFlag)
	}
}

func parseSystem(rates, arrivals string) *nashlb.System {
	rs, err := cli.ParseFloats(rates)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	as, err := cli.ParseFloats(arrivals)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	sys, err := nashlb.NewSystem(rs, as)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func runDemo(rates, arrivals string, eps float64, verify bool) {
	sys := parseSystem(rates, arrivals)
	fmt.Printf("starting a TCP token ring of %d user nodes on loopback...\n", sys.Users())
	start := time.Now()
	res, err := nashlb.SolveNashTCP(sys, nashlb.RingOptions{Epsilon: eps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d token circulations in %v\n", res.Rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("overall expected response time %.6g s, fairness %.4f\n",
		res.OverallTime, nashlb.JainFairness(res.UserTimes))

	t := report.NewTable("Per-user expected response time at the equilibrium", "user", "D_i (s)")
	for i, d := range res.UserTimes {
		t.AddRow(fmt.Sprint(i+1), report.F(d, 6))
	}
	fmt.Println()
	fmt.Print(t.String())

	if verify {
		ok, impr, err := nashlb.VerifyEquilibrium(sys, res.Profile, 1e-6)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Println("\nverified: no user can improve by a unilateral deviation")
		} else {
			log.Fatalf("NOT an equilibrium: best deviation improves %g s", impr)
		}
	}
}

// supervisedConfig bundles the chaos/supervision flags of the demo.
type supervisedConfig struct {
	drop, dup, delay, reorder float64
	delayMax                  time.Duration
	crash                     int
	crashAfter                int
	restart                   bool
	restartDelay              time.Duration
	seed                      uint64
	recvTimeout               time.Duration
	maxMisses                 int
}

func runSupervised(rates, arrivals string, eps float64, verify bool, cfg supervisedConfig) {
	sys := parseSystem(rates, arrivals)
	if cfg.crash == 0 {
		log.Fatal("-crash: node 0 is the leader/recovery agent and cannot be crashed")
	}
	fmt.Printf("starting a supervised ring of %d user nodes (chaos seed %d)...\n", sys.Users(), cfg.seed)
	store := dist.NewMemoryStore(sys, nil)
	src := rng.NewSource(cfg.seed)
	start := time.Now()
	res, err := dist.Supervise(sys, store, dist.SupervisorOptions{
		Epsilon:      eps,
		RecvTimeout:  cfg.recvTimeout,
		MaxMisses:    cfg.maxMisses,
		Restart:      cfg.restart,
		RestartDelay: cfg.restartDelay,
		Wrap: func(id int, tr dist.Transport) dist.Transport {
			c := dist.ChaosConfig{
				Drop: cfg.drop, Dup: cfg.dup, DelayProb: cfg.delay, MaxDelay: cfg.delayMax,
				Reorder: cfg.reorder, R: src.Stream(fmt.Sprintf("link%d", id)),
			}
			if id == cfg.crash {
				c.CrashAfterRecvs = cfg.crashAfter
			}
			if c.Drop == 0 && c.Dup == 0 && c.DelayProb == 0 && c.Reorder == 0 && c.CrashAfterRecvs == 0 {
				return tr
			}
			return dist.NewChaos(tr, c)
		},
	})
	if res == nil {
		log.Fatal(err)
	}
	if err != nil {
		fmt.Printf("run ended without full convergence: %v\n", err)
	}
	fmt.Printf("%d token circulations in %v: %d recoveries, %d generations, %d restarts\n",
		res.Rounds, time.Since(start).Round(time.Millisecond), res.Recoveries, res.Generations, res.Restarts)
	if len(res.Ejected) > 0 {
		fmt.Printf("ejected nodes %v (strategies frozen at their last published values)\n", res.Ejected)
	}
	fmt.Printf("final norm %.3g, overall expected response time %.6g s\n", res.Norm, res.OverallTime)

	if verify {
		ejected := make(map[int]bool)
		for _, i := range res.Ejected {
			ejected[i] = true
		}
		worst := 0.0
		for i := range res.Profile {
			if ejected[i] {
				continue
			}
			avail := sys.AvailableRates(res.Profile, i)
			best, err := core.Optimal(avail, sys.Arrivals[i])
			if err != nil {
				log.Fatal(err)
			}
			gain := core.ResponseTime(avail, sys.Arrivals[i], res.Profile[i]) -
				core.ResponseTime(avail, sys.Arrivals[i], best)
			if gain > worst {
				worst = gain
			}
		}
		if worst <= 1e-6 {
			fmt.Println("verified: no surviving user can improve by a unilateral deviation")
		} else {
			log.Fatalf("NOT an equilibrium: best surviving-user deviation improves %g s", worst)
		}
	}
}

func runState(rates, arrivals, listen string) {
	sys := parseSystem(rates, arrivals)
	store := dist.NewMemoryStore(sys, nil)
	srv, err := dist.ServeState(store, listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state service for %d computers / %d users listening on %s\n",
		sys.Computers(), sys.Users(), srv.Addr())
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	// Print the final profile so an operator sees where the ring landed.
	p := store.Snapshot()
	fmt.Println("\nfinal strategy profile:")
	for i, s := range p {
		fmt.Printf("  user %d: %v\n", i+1, []float64(s))
	}
}

// nodeParams bundles the node-mode flags.
type nodeParams struct {
	id, users   int
	arrival     float64
	stateAddr   string
	listen      string
	next        string
	eps         float64
	recvTimeout time.Duration
	recover     bool
	epoch       uint64
}

func runNode(p nodeParams) {
	if p.stateAddr == "" || p.next == "" || p.users < 1 {
		log.Fatal("node mode needs -state, -next, -users, -id and -arrival")
	}
	tr, err := dist.NewTCPNode(p.listen, p.next)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	fmt.Printf("node %d/%d listening on %s, successor %s, state %s\n",
		p.id, p.users, dist.NodeAddr(tr), p.next, p.stateAddr)
	client := dist.DialState(p.stateAddr)
	defer client.Close()
	res, err := dist.RunNode(dist.NodeConfig{
		ID: p.id, Users: p.users, Arrival: p.arrival, Epsilon: p.eps,
		Epoch: p.epoch, RecvTimeout: p.recvTimeout, Recover: p.recover,
	}, client, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d done: %d rounds, converged=%v\n", p.id, res.Rounds, res.Converged)
	fmt.Printf("final strategy: %v\n", []float64(game.Strategy(res.Strategy)))
}
