// Command nashd runs the paper's NASH algorithm as an actual distributed
// protocol. Three modes:
//
// demo (default) — one process, one goroutine per user, loopback TCP ring:
//
//	nashd -rates 6x10,5x20,3x50,2x100 -arrivals 10x30.6 [-eps 1e-9] [-verify]
//
// state — the cluster-state service (the deployment analogue of the paper's
// "inspect the run queue of each computer"):
//
//	nashd -mode state -listen 127.0.0.1:7000 -rates ... -arrivals ...
//
// node — one user node; point it at the state service, give it a listen
// address and its successor's ring address. Start the nodes in any order
// (node 0 retries dialing its successor); node 0 leads:
//
//	nashd -mode node -id 0 -users 3 -arrival 30 -state 127.0.0.1:7000 \
//	      -listen 127.0.0.1:7100 -next 127.0.0.1:7101
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"nashlb"
	"nashlb/internal/cli"
	"nashlb/internal/dist"
	"nashlb/internal/game"
	"nashlb/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nashd: ")
	var (
		modeFlag     = flag.String("mode", "demo", "demo, state or node")
		ratesFlag    = flag.String("rates", "6x10,5x20,3x50,2x100", "computer processing rates (jobs/s; demo and state modes)")
		arrivalsFlag = flag.String("arrivals", "10x30.6", "user arrival rates (jobs/s; demo and state modes)")
		epsFlag      = flag.Float64("eps", 0, "norm acceptance tolerance (0 = library default)")
		verifyFlag   = flag.Bool("verify", false, "verify the result is a Nash equilibrium (demo mode)")
		listenFlag   = flag.String("listen", "127.0.0.1:0", "listen address (state and node modes)")
		stateFlag    = flag.String("state", "", "state service address (node mode)")
		nextFlag     = flag.String("next", "", "successor node's ring address (node mode)")
		idFlag       = flag.Int("id", 0, "this node's 0-based id (node mode)")
		usersFlag    = flag.Int("users", 0, "ring size (node mode)")
		arrivalFlag  = flag.Float64("arrival", 0, "this user's arrival rate (node mode)")
	)
	flag.Parse()

	switch *modeFlag {
	case "demo":
		runDemo(*ratesFlag, *arrivalsFlag, *epsFlag, *verifyFlag)
	case "state":
		runState(*ratesFlag, *arrivalsFlag, *listenFlag)
	case "node":
		runNode(*idFlag, *usersFlag, *arrivalFlag, *stateFlag, *listenFlag, *nextFlag, *epsFlag)
	default:
		log.Fatalf("-mode: unknown mode %q (want demo, state or node)", *modeFlag)
	}
}

func parseSystem(rates, arrivals string) *nashlb.System {
	rs, err := cli.ParseFloats(rates)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	as, err := cli.ParseFloats(arrivals)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	sys, err := nashlb.NewSystem(rs, as)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func runDemo(rates, arrivals string, eps float64, verify bool) {
	sys := parseSystem(rates, arrivals)
	fmt.Printf("starting a TCP token ring of %d user nodes on loopback...\n", sys.Users())
	start := time.Now()
	res, err := nashlb.SolveNashTCP(sys, nashlb.RingOptions{Epsilon: eps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d token circulations in %v\n", res.Rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("overall expected response time %.6g s, fairness %.4f\n",
		res.OverallTime, nashlb.JainFairness(res.UserTimes))

	t := report.NewTable("Per-user expected response time at the equilibrium", "user", "D_i (s)")
	for i, d := range res.UserTimes {
		t.AddRow(fmt.Sprint(i+1), report.F(d, 6))
	}
	fmt.Println()
	fmt.Print(t.String())

	if verify {
		ok, impr, err := nashlb.VerifyEquilibrium(sys, res.Profile, 1e-6)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Println("\nverified: no user can improve by a unilateral deviation")
		} else {
			log.Fatalf("NOT an equilibrium: best deviation improves %g s", impr)
		}
	}
}

func runState(rates, arrivals, listen string) {
	sys := parseSystem(rates, arrivals)
	store := dist.NewMemoryStore(sys, nil)
	srv, err := dist.ServeState(store, listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state service for %d computers / %d users listening on %s\n",
		sys.Computers(), sys.Users(), srv.Addr())
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	// Print the final profile so an operator sees where the ring landed.
	p := store.Snapshot()
	fmt.Println("\nfinal strategy profile:")
	for i, s := range p {
		fmt.Printf("  user %d: %v\n", i+1, []float64(s))
	}
}

func runNode(id, users int, arrival float64, stateAddr, listen, next string, eps float64) {
	if stateAddr == "" || next == "" || users < 1 {
		log.Fatal("node mode needs -state, -next, -users, -id and -arrival")
	}
	tr, err := dist.NewTCPNode(listen, next)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	fmt.Printf("node %d/%d listening on %s, successor %s, state %s\n",
		id, users, dist.NodeAddr(tr), next, stateAddr)
	client := dist.DialState(stateAddr)
	defer client.Close()
	res, err := dist.RunNode(dist.NodeConfig{
		ID: id, Users: users, Arrival: arrival, Epsilon: eps,
	}, client, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d done: %d rounds, converged=%v\n", id, res.Rounds, res.Converged)
	fmt.Printf("final strategy: %v\n", []float64(game.Strategy(res.Strategy)))
}
