// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_core.json document (schema nashlb/bench-core/v2,
// documented in EXPERIMENTS.md). It reads benchmark output on stdin —
// possibly spanning several packages and several -count repetitions — and
// writes one JSON document to stdout. With -ext11 FILE, the EXT11
// planet-scale scaling sweep (written by `experiments -benchcore`) is
// embedded verbatim under the "ext11" key, putting the solve-time and
// memory curves next to the microbenchmarks they explain.
//
// With -serve FILE the tool switches to merge mode for BENCH_serve.json
// (schema 5): the parsed benchmarks are placed under the "throughput" key
// of FILE, preserving every other key the serving experiments wrote
// (ext8/ext9/ext10/ext12). A schema-4 document (schema 5 minus the ext12
// key) is migrated to 5 in place with all keys preserved; any other schema
// version is refused with an error instead of silently overwritten — a
// stale or foreign document is a bug to surface, not data to clobber.
//
// Repeated runs of the same benchmark are folded into a single entry
// keeping the fastest ns/op (the standard best-of-N reading, least noise)
// and the worst-case allocation counts (a regression must not hide behind
// one lucky run). Where a seed baseline is known, the entry also carries
// the baseline and the resulting speedup, so the ≥3× DES gate and the
// zero-allocation gates are visible in the artifact itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// baseline holds the seed-commit (e917521) numbers for a benchmark shape,
// measured on the same machine class as CI (single-vCPU Xeon @ 2.10GHz,
// see EXPERIMENTS.md). Entries without a baseline are simply reported.
type baseline struct {
	nsPerOp     float64
	allocsPerOp int64
}

var seedBaselines = map[string]baseline{
	// Verbatim copy of the seed container/heap kernel, same workloads.
	"nashlb/internal/des.BenchmarkCoreKernelOnly":       {nsPerOp: 65.3, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreEventLoopTyped":   {nsPerOp: 97.6, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreEventLoopClosure": {nsPerOp: 97.6, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreDeepHeap":         {nsPerOp: 382.4, allocsPerOp: 1},
	// Seed cluster.Simulate, Table-1 shape, Duration 2000 (~18.3k jobs at
	// ~1.25M jobs/sec) with per-job closure allocations.
	"nashlb/internal/cluster.BenchmarkCoreClusterSimulate": {nsPerOp: 1.47e7, allocsPerOp: 71986},
	// Seed gateway observe path: one global histogram mutex.
	"nashlb/internal/serve.BenchmarkCoreGatewayRecord":       {nsPerOp: 160, allocsPerOp: 0},
	"nashlb/internal/serve.BenchmarkCoreGatewayRecordSerial": {nsPerOp: 160, allocsPerOp: 0},
}

type entry struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp *int64  `json:"seed_allocs_per_op,omitempty"`
	SpeedupVsSeed   float64 `json:"speedup_vs_seed,omitempty"`
}

type document struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	Goos       string   `json:"goos"`
	Goarch     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []*entry `json:"benchmarks"`
	// Ext11 is the EXT11 planet-scale scaling sweep, embedded verbatim from
	// the -ext11 file when given (see internal/experiments.Ext11).
	Ext11 json.RawMessage `json:"ext11,omitempty"`
}

// serveSchema is the BENCH_serve.json schema version the merge mode writes
// (schema 5 = serving experiments incl. ext12_partition plus the
// "throughput" key). serveSchemaPrev documents the one older version the
// merge migrates in place: schema 4 is schema 5 minus the ext12 key, so
// upgrading it loses nothing.
const (
	serveSchema     = 5
	serveSchemaPrev = 4
)

func main() {
	ext11Flag := flag.String("ext11", "", "EXT11 sweep JSON (from `experiments -benchcore`) to embed under the ext11 key")
	serveFlag := flag.String("serve", "", "merge the parsed benchmarks into this BENCH_serve.json (schema 5; schema 4 is migrated) under the throughput key")
	flag.Parse()

	doc, err := scanBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *serveFlag != "" {
		existing, err := os.ReadFile(*serveFlag)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		merged, err := mergeServe(existing, doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: refusing to write %s: %v\n", *serveFlag, err)
			os.Exit(1)
		}
		if err := writeFileAtomic(*serveFlag, merged); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *ext11Flag != "" {
		raw, err := os.ReadFile(*ext11Flag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *ext11Flag)
			os.Exit(1)
		}
		doc.Ext11 = json.RawMessage(raw)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// scanBench parses `go test -bench` text output into a bench-core
// document, folding repeated runs and attaching seed baselines.
func scanBench(r io.Reader) (*document, error) {
	doc := &document{Schema: "nashlb/bench-core/v2", GoVersion: runtime.Version()}
	byKey := map[string]*entry{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseBenchLine(pkg, line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			key := e.Pkg + "." + e.Name
			prev, ok := byKey[key]
			if !ok {
				byKey[key] = e
				doc.Benchmarks = append(doc.Benchmarks, e)
				continue
			}
			prev.Runs++
			if e.NsPerOp < prev.NsPerOp { // best-of for speed and metrics
				prev.NsPerOp, prev.Iters, prev.Metrics = e.NsPerOp, e.Iters, e.Metrics
			}
			if e.BytesPerOp > prev.BytesPerOp { // worst-of for allocations
				prev.BytesPerOp = e.BytesPerOp
			}
			if e.AllocsPerOp > prev.AllocsPerOp {
				prev.AllocsPerOp = e.AllocsPerOp
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}

	for _, e := range doc.Benchmarks {
		if b, ok := seedBaselines[e.Pkg+"."+e.Name]; ok {
			e.SeedNsPerOp = b.nsPerOp
			allocs := b.allocsPerOp
			e.SeedAllocsPerOp = &allocs
			if e.NsPerOp > 0 {
				e.SpeedupVsSeed = round3(b.nsPerOp / e.NsPerOp)
			}
		}
	}
	return doc, nil
}

// throughputSection is what mergeServe places under the "throughput" key:
// the environment header plus the parsed benchmark entries.
type throughputSection struct {
	GoVersion  string   `json:"go"`
	Goos       string   `json:"goos"`
	Goarch     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []*entry `json:"benchmarks"`
}

// mergeServe folds doc's benchmarks into an existing BENCH_serve.json body
// (nil or empty when the file does not exist yet) under the "throughput"
// key, keeping every other top-level key intact. A schema-serveSchemaPrev
// document is migrated to serveSchema in place (the newer schema only adds
// keys); any other schema — or a body that is not a JSON object at all — is
// refused: the caller must not overwrite data it does not understand.
func mergeServe(existing []byte, doc *document) ([]byte, error) {
	top := map[string]json.RawMessage{}
	if len(existing) > 0 {
		if err := json.Unmarshal(existing, &top); err != nil {
			return nil, fmt.Errorf("existing document is not a JSON object: %v", err)
		}
		if raw, ok := top["schema"]; ok {
			var schema int
			if err := json.Unmarshal(raw, &schema); err != nil {
				return nil, fmt.Errorf("existing document has a non-numeric schema %s", raw)
			}
			switch schema {
			case serveSchema:
			case serveSchemaPrev:
				// Schema 4 is a strict subset of schema 5 (no
				// ext12_partition key): migrate in place, preserving every
				// key the old document carried.
			default:
				return nil, fmt.Errorf("existing document has schema %d, this tool writes schema %d (and migrates only schema %d) — regenerate it (experiments -run ext8,ext9,ext10,ext12 -benchjson FILE) or delete it first", schema, serveSchema, serveSchemaPrev)
			}
		}
	}
	schemaRaw, err := json.Marshal(serveSchema)
	if err != nil {
		return nil, err
	}
	top["schema"] = schemaRaw
	section := throughputSection{
		GoVersion:  doc.GoVersion,
		Goos:       doc.Goos,
		Goarch:     doc.Goarch,
		CPU:        doc.CPU,
		Benchmarks: doc.Benchmarks,
	}
	sectionRaw, err := json.Marshal(section)
	if err != nil {
		return nil, err
	}
	top["throughput"] = sectionRaw
	return json.MarshalIndent(top, "", "  ")
}

// writeFileAtomic writes data via a temp file and rename so a crashed run
// never leaves a truncated BENCH_serve.json behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".benchjson-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkCoreKernelOnly-4  66936292  16.61 ns/op  60200825 events/sec  0 B/op  0 allocs/op
//
// The name's -GOMAXPROCS suffix is stripped; value/unit pairs after the
// iteration count become ns_per_op, bytes_per_op, allocs_per_op, or custom
// metrics (b.ReportMetric columns such as events/sec).
func parseBenchLine(pkg, line string) (*entry, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return nil, fmt.Errorf("too few fields")
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count: %w", err)
	}
	e := &entry{Pkg: pkg, Name: name, Runs: 1, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	if e.NsPerOp == 0 && e.Metrics == nil {
		return nil, fmt.Errorf("no ns/op column")
	}
	return e, nil
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
