// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_core.json document (schema nashlb/bench-core/v2,
// documented in EXPERIMENTS.md). It reads benchmark output on stdin —
// possibly spanning several packages and several -count repetitions — and
// writes one JSON document to stdout. With -ext11 FILE, the EXT11
// planet-scale scaling sweep (written by `experiments -benchcore`) is
// embedded verbatim under the "ext11" key, putting the solve-time and
// memory curves next to the microbenchmarks they explain.
//
// Repeated runs of the same benchmark are folded into a single entry
// keeping the fastest ns/op (the standard best-of-N reading, least noise)
// and the worst-case allocation counts (a regression must not hide behind
// one lucky run). Where a seed baseline is known, the entry also carries
// the baseline and the resulting speedup, so the ≥3× DES gate and the
// zero-allocation gates are visible in the artifact itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// baseline holds the seed-commit (e917521) numbers for a benchmark shape,
// measured on the same machine class as CI (single-vCPU Xeon @ 2.10GHz,
// see EXPERIMENTS.md). Entries without a baseline are simply reported.
type baseline struct {
	nsPerOp     float64
	allocsPerOp int64
}

var seedBaselines = map[string]baseline{
	// Verbatim copy of the seed container/heap kernel, same workloads.
	"nashlb/internal/des.BenchmarkCoreKernelOnly":       {nsPerOp: 65.3, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreEventLoopTyped":   {nsPerOp: 97.6, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreEventLoopClosure": {nsPerOp: 97.6, allocsPerOp: 1},
	"nashlb/internal/des.BenchmarkCoreDeepHeap":         {nsPerOp: 382.4, allocsPerOp: 1},
	// Seed cluster.Simulate, Table-1 shape, Duration 2000 (~18.3k jobs at
	// ~1.25M jobs/sec) with per-job closure allocations.
	"nashlb/internal/cluster.BenchmarkCoreClusterSimulate": {nsPerOp: 1.47e7, allocsPerOp: 71986},
	// Seed gateway observe path: one global histogram mutex.
	"nashlb/internal/serve.BenchmarkCoreGatewayRecord":       {nsPerOp: 160, allocsPerOp: 0},
	"nashlb/internal/serve.BenchmarkCoreGatewayRecordSerial": {nsPerOp: 160, allocsPerOp: 0},
}

type entry struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp *int64  `json:"seed_allocs_per_op,omitempty"`
	SpeedupVsSeed   float64 `json:"speedup_vs_seed,omitempty"`
}

type document struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	Goos       string   `json:"goos"`
	Goarch     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []*entry `json:"benchmarks"`
	// Ext11 is the EXT11 planet-scale scaling sweep, embedded verbatim from
	// the -ext11 file when given (see internal/experiments.Ext11).
	Ext11 json.RawMessage `json:"ext11,omitempty"`
}

func main() {
	ext11Flag := flag.String("ext11", "", "EXT11 sweep JSON (from `experiments -benchcore`) to embed under the ext11 key")
	flag.Parse()

	doc := document{Schema: "nashlb/bench-core/v2", GoVersion: runtime.Version()}
	byKey := map[string]*entry{}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseBenchLine(pkg, line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			key := e.Pkg + "." + e.Name
			prev, ok := byKey[key]
			if !ok {
				byKey[key] = e
				doc.Benchmarks = append(doc.Benchmarks, e)
				continue
			}
			prev.Runs++
			if e.NsPerOp < prev.NsPerOp { // best-of for speed and metrics
				prev.NsPerOp, prev.Iters, prev.Metrics = e.NsPerOp, e.Iters, e.Metrics
			}
			if e.BytesPerOp > prev.BytesPerOp { // worst-of for allocations
				prev.BytesPerOp = e.BytesPerOp
			}
			if e.AllocsPerOp > prev.AllocsPerOp {
				prev.AllocsPerOp = e.AllocsPerOp
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *ext11Flag != "" {
		raw, err := os.ReadFile(*ext11Flag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *ext11Flag)
			os.Exit(1)
		}
		doc.Ext11 = json.RawMessage(raw)
	}

	for _, e := range doc.Benchmarks {
		if b, ok := seedBaselines[e.Pkg+"."+e.Name]; ok {
			e.SeedNsPerOp = b.nsPerOp
			allocs := b.allocsPerOp
			e.SeedAllocsPerOp = &allocs
			if e.NsPerOp > 0 {
				e.SpeedupVsSeed = round3(b.nsPerOp / e.NsPerOp)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkCoreKernelOnly-4  66936292  16.61 ns/op  60200825 events/sec  0 B/op  0 allocs/op
//
// The name's -GOMAXPROCS suffix is stripped; value/unit pairs after the
// iteration count become ns_per_op, bytes_per_op, allocs_per_op, or custom
// metrics (b.ReportMetric columns such as events/sec).
func parseBenchLine(pkg, line string) (*entry, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return nil, fmt.Errorf("too few fields")
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count: %w", err)
	}
	e := &entry{Pkg: pkg, Name: name, Runs: 1, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	if e.NsPerOp == 0 && e.Metrics == nil {
		return nil, fmt.Errorf("no ns/op column")
	}
	return e, nil
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
