package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const serveBenchOutput = `goos: linux
goarch: amd64
pkg: nashlb/internal/serve
cpu: Intel(R) Xeon(R) CPU @ 2.70GHz
BenchmarkServeThroughput/hot-4     2500000   460.8 ns/op   2170000 req/s   0 B/op   0 allocs/op
BenchmarkServeThroughput/legacy-4   500000  2232.0 ns/op    448000 req/s  1184 B/op  8 allocs/op
`

func scanServe(t *testing.T) *document {
	t.Helper()
	doc, err := scanBench(strings.NewReader(serveBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestMergeServeSchemaMismatch pins the satellite fix: an existing
// BENCH_serve.json with a foreign schema version must be refused, never
// silently overwritten.
func TestMergeServeSchemaMismatch(t *testing.T) {
	existing := []byte(`{"schema": 3, "ext8_live_serving": {"experiment": "ext8"}}`)
	_, err := mergeServe(existing, scanServe(t))
	if err == nil {
		t.Fatal("schema-3 document was merged, want refusal")
	}
	if !strings.Contains(err.Error(), "schema 3") || !strings.Contains(err.Error(), "schema 5") {
		t.Fatalf("refusal %q does not name both schema versions", err)
	}
}

// TestMergeServeMigratesSchema4: a schema-4 document (schema 5 minus the
// ext12 key) is upgraded in place, every key preserved.
func TestMergeServeMigratesSchema4(t *testing.T) {
	existing := []byte(`{"schema": 4, "ext8_live_serving": {"experiment": "ext8"}, "ext10_fleet": {"experiment": "ext10"}}`)
	out, err := mergeServe(existing, scanServe(t))
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ext8_live_serving", "ext10_fleet", "throughput"} {
		if _, ok := top[key]; !ok {
			t.Fatalf("migration lost key %q", key)
		}
	}
	var schema int
	if err := json.Unmarshal(top["schema"], &schema); err != nil || schema != serveSchema {
		t.Fatalf("migrated schema %s, want %d", top["schema"], serveSchema)
	}
}

// TestMergeServeRejectsGarbage: a corrupt or non-object existing file is
// refused too — merge mode never guesses.
func TestMergeServeRejectsGarbage(t *testing.T) {
	for _, existing := range []string{`not json`, `[1, 2, 3]`, `{"schema": "four"}`} {
		if _, err := mergeServe([]byte(existing), scanServe(t)); err == nil {
			t.Fatalf("existing body %q was merged, want refusal", existing)
		}
	}
}

// TestMergeServePreservesKeys: merging into a matching-schema document
// keeps the serving-experiment keys and adds throughput.
func TestMergeServePreservesKeys(t *testing.T) {
	existing := []byte(`{"schema": 5, "ext8_live_serving": {"experiment": "ext8"}, "ext9_self_healing": {"experiment": "ext9"}, "ext12_partition": {"experiment": "ext12"}}`)
	out, err := mergeServe(existing, scanServe(t))
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "ext8_live_serving", "ext9_self_healing", "ext12_partition", "throughput"} {
		if _, ok := top[key]; !ok {
			t.Fatalf("merged document lost key %q", key)
		}
	}
	var schema int
	if err := json.Unmarshal(top["schema"], &schema); err != nil || schema != serveSchema {
		t.Fatalf("merged schema %s, want %d", top["schema"], serveSchema)
	}
	var section throughputSection
	if err := json.Unmarshal(top["throughput"], &section); err != nil {
		t.Fatal(err)
	}
	if len(section.Benchmarks) != 2 {
		t.Fatalf("throughput carries %d benchmarks, want 2", len(section.Benchmarks))
	}
	hot := section.Benchmarks[0]
	if hot.Name != "BenchmarkServeThroughput/hot" {
		t.Fatalf("first benchmark %q", hot.Name)
	}
	if hot.Metrics["req/s"] != 2170000 {
		t.Fatalf("hot req/s metric %v", hot.Metrics)
	}
	if hot.AllocsPerOp != 0 || section.Benchmarks[1].AllocsPerOp != 8 {
		t.Fatalf("allocs hot=%d legacy=%d, want 0 and 8",
			hot.AllocsPerOp, section.Benchmarks[1].AllocsPerOp)
	}
}

// TestMergeServeFreshFile: with no existing document, merge mode starts a
// schema-5 document from scratch.
func TestMergeServeFreshFile(t *testing.T) {
	out, err := mergeServe(nil, scanServe(t))
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatal(err)
	}
	var schema int
	if err := json.Unmarshal(top["schema"], &schema); err != nil || schema != serveSchema {
		t.Fatalf("fresh schema %s, want %d", top["schema"], serveSchema)
	}
	if _, ok := top["throughput"]; !ok {
		t.Fatal("fresh document missing throughput")
	}
}

// TestParseBenchLine covers the GOMAXPROCS suffix strip, the standard
// columns, and ReportMetric custom units.
func TestParseBenchLine(t *testing.T) {
	e, err := parseBenchLine("nashlb/internal/serve",
		"BenchmarkServeThroughput/e2e-4   14000   81250 ns/op   12307 req/s   8032 B/op   159 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "BenchmarkServeThroughput/e2e" {
		t.Fatalf("name %q: GOMAXPROCS suffix not stripped", e.Name)
	}
	if e.Iters != 14000 || e.NsPerOp != 81250 || e.BytesPerOp != 8032 || e.AllocsPerOp != 159 {
		t.Fatalf("columns %+v", e)
	}
	if e.Metrics["req/s"] != 12307 {
		t.Fatalf("metrics %v", e.Metrics)
	}
	for _, bad := range []string{
		"BenchmarkX", "BenchmarkX notanumber 5 ns/op", "BenchmarkX 100 bad ns/op",
	} {
		if _, err := parseBenchLine("p", bad); err == nil {
			t.Fatalf("%q parsed, want error", bad)
		}
	}
}
