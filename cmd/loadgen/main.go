// Command loadgen drives a nashgate gateway with reproducible traffic: one
// independent seeded Poisson arrival stream per user.
//
//	loadgen -target http://127.0.0.1:8080 -arrivals 2x12 \
//	        [-duration 10s] [-warmup 1s] [-seed 2002] [-timeout 10s] \
//	        [-mode open|closed] [-connections 16] [-ramp 0.25,0.5,1,2,4]
//
// Two generator modes. The default -mode open is the paper's arrival model:
// requests fire on schedule regardless of how slowly the server answers, so
// offered load is exact. -mode closed is the wrk-style harness: a fixed pool
// of -connections workers sends synchronously against the shared Poisson
// schedule — cheaper at high rates, but a stalled server silently throttles
// the senders. Both modes report latency two ways: uncorrected (send to
// completion, what a closed loop naively measures) and corrected (intended
// schedule time to completion), so coordinated omission is visible instead
// of hidden. p50/p90/p99/p999 come from the corrected and uncorrected
// distributions side by side.
//
// -ramp runs the whole load repeatedly at scaled offered rates (the factors
// given) and reports the goodput curve and its knee — the last factor where
// achieved/offered >= 0.9 — instead of a single-point report.
//
// Against a gateway fleet, give -target a comma-separated list (or repeat
// the flag); each request picks a gateway uniformly from a seeded per-user
// stream, and a transport-level failure (a dead gateway refusing the
// connection) fails over to the next target round-robin. The report then
// adds a per-target attempt breakdown by status class.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"nashlb/internal/cli"
	"nashlb/internal/serve"
)

// targetList collects -target values: the flag may be repeated, and each
// value may itself be a comma-separated list.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }

func (t *targetList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			return fmt.Errorf("empty URL in %q", v)
		}
		*t = append(*t, strings.TrimSuffix(u, "/"))
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var targets targetList
	flag.Var(&targets, "target", "gateway base URL (repeat or comma-separate for a fleet)")
	var (
		arrivalsFlag = flag.String("arrivals", "", "user arrival rates phi_i (req/s)")
		durationFlag = flag.Duration("duration", 10*time.Second, "sending duration")
		warmupFlag   = flag.Duration("warmup", time.Second, "discard responses to requests sent before this offset")
		seedFlag     = flag.Uint64("seed", 2002, "seed for the interarrival streams")
		timeoutFlag  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		modeFlag     = flag.String("mode", "open", "generator mode: open (schedule-driven) or closed (worker pool)")
		connsFlag    = flag.Int("connections", 16, "closed-loop worker count (ignored in open mode)")
		rampFlag     = flag.String("ramp", "", "rate factors for a throughput ramp, e.g. 0.25,0.5,1,2,4")
	)
	flag.Parse()

	if len(targets) == 0 {
		log.Fatal("need -target")
	}
	arrivals, err := cli.ParseFloats(*arrivalsFlag)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}

	cfg := serve.LoadConfig{
		Targets:     targets,
		Arrivals:    arrivals,
		Duration:    *durationFlag,
		Warmup:      *warmupFlag,
		Seed:        *seedFlag,
		Timeout:     *timeoutFlag,
		Mode:        *modeFlag,
		Connections: *connsFlag,
	}

	if *rampFlag != "" {
		factors, err := cli.ParseFloats(*rampFlag)
		if err != nil {
			log.Fatalf("-ramp: %v", err)
		}
		ramp, err := serve.RunRamp(cfg, factors)
		if err != nil {
			log.Fatal(err)
		}
		printRamp(ramp)
		return
	}

	res, err := serve.RunLoad(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %10s %10s %10s %10s %12s %12s %12s\n",
		"user", "sent", "ok", "rejected", "failed", "mean(ms)", "min(ms)", "max(ms)")
	for i := range res.Sent {
		fmt.Printf("%-6d %10d %10d %10d %10d %12.3f %12.3f %12.3f\n",
			i, res.Sent[i], res.OK[i], res.Rejected[i], res.Failed[i],
			1e3*res.MeanSeconds[i], 1e3*res.MinSeconds[i], 1e3*res.MaxSeconds[i])
	}
	var ok, rejected, failed int64
	var s429, s503, s5xx, shed, timeouts, trans int64
	for i := range res.Sent {
		ok += res.OK[i]
		rejected += res.Rejected[i]
		failed += res.Failed[i]
		s429 += res.Status429[i]
		s503 += res.Status503[i]
		s5xx += res.Status5xx[i]
		shed += res.Shed[i]
		timeouts += res.Timeouts[i]
		trans += res.TransportErrors[i]
	}
	fmt.Printf("%-6s %10d %10d %10d %10d %12.3f\n",
		"all", res.TotalSent, ok, rejected, failed, 1e3*res.Mean)
	if rejected+failed > 0 {
		fmt.Printf("breakdown: 429=%d 503=%d (shed=%d) other-5xx=%d timeout=%d transport=%d\n",
			s429, s503, shed, s5xx, timeouts, trans)
	}
	printPercentiles(res.Corrected, res.Uncorrected)
	if len(targets) > 1 {
		fmt.Printf("\n%-40s %10s %10s %10s %10s %10s %10s %10s\n",
			"target (attempts)", "sent", "2xx", "429", "503", "shed", "5xx", "transport")
		for _, tc := range res.PerTarget {
			fmt.Printf("%-40s %10d %10d %10d %10d %10d %10d %10d\n",
				tc.Target, tc.Sent, tc.Status2xx, tc.Status429, tc.Status503,
				tc.Shed, tc.Status5xx, tc.Transport+tc.Timeouts)
		}
		fmt.Printf("failovers: %d\n", res.Failovers)
	}
}

// printPercentiles shows the two latency views side by side: corrected
// (intended schedule time to completion — immune to coordinated omission)
// and uncorrected (send to completion — what a blocked closed loop sees).
func printPercentiles(corr, uncorr serve.LatencySummary) {
	if corr.Count == 0 {
		return
	}
	fmt.Printf("\n%-22s %10s %10s %10s %10s %10s\n",
		"latency (ms)", "p50", "p90", "p99", "p999", "max")
	fmt.Printf("%-22s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
		"corrected (intended)", 1e3*corr.P50, 1e3*corr.P90, 1e3*corr.P99, 1e3*corr.P999, 1e3*corr.Max)
	fmt.Printf("%-22s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
		"uncorrected (send)", 1e3*uncorr.P50, 1e3*uncorr.P90, 1e3*uncorr.P99, 1e3*uncorr.P999, 1e3*uncorr.Max)
}

// printRamp shows the goodput curve and the knee factor.
func printRamp(r *serve.RampResult) {
	fmt.Printf("%-8s %12s %12s %8s %12s %12s %12s\n",
		"factor", "offered/s", "achieved/s", "goodput", "p50(ms)", "p99(ms)", "p99corr(ms)")
	for _, pt := range r.Points {
		fmt.Printf("%-8.3g %12.1f %12.1f %8.3f %12.3f %12.3f %12.3f\n",
			pt.Factor, pt.OfferedRate, pt.AchievedRate, pt.Goodput,
			1e3*pt.Uncorrected.P50, 1e3*pt.Uncorrected.P99, 1e3*pt.Corrected.P99)
	}
	if r.Knee >= 0 {
		pt := r.Points[r.Knee]
		fmt.Printf("knee: factor %.3g (%.1f req/s offered, goodput %.3f >= %.2f)\n",
			pt.Factor, pt.OfferedRate, pt.Goodput, serve.KneeGoodput)
	} else {
		fmt.Printf("knee: none (goodput below %.2f at every factor)\n", serve.KneeGoodput)
	}
}
