// Command loadgen drives a nashgate gateway with open-loop Poisson traffic:
// one independent arrival stream per user, scheduled on seeded rng streams
// so a run's offered load is exactly reproducible.
//
//	loadgen -target http://127.0.0.1:8080 -arrivals 2x12 \
//	        [-duration 10s] [-warmup 1s] [-seed 2002] [-timeout 10s]
//
// Against a gateway fleet, give -target a comma-separated list (or repeat
// the flag); each request picks a gateway uniformly from a seeded per-user
// stream, and a transport-level failure (a dead gateway refusing the
// connection) fails over to the next target round-robin. The report then
// adds a per-target attempt breakdown by status class.
//
// It reports per-user and overall counts and response-time statistics for
// the post-warmup window. Offered load is open-loop: response latency never
// throttles the senders, as in the paper's Poisson arrival model.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"nashlb/internal/cli"
	"nashlb/internal/serve"
)

// targetList collects -target values: the flag may be repeated, and each
// value may itself be a comma-separated list.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }

func (t *targetList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			return fmt.Errorf("empty URL in %q", v)
		}
		*t = append(*t, strings.TrimSuffix(u, "/"))
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var targets targetList
	flag.Var(&targets, "target", "gateway base URL (repeat or comma-separate for a fleet)")
	var (
		arrivalsFlag = flag.String("arrivals", "", "user arrival rates phi_i (req/s)")
		durationFlag = flag.Duration("duration", 10*time.Second, "sending duration")
		warmupFlag   = flag.Duration("warmup", time.Second, "discard responses to requests sent before this offset")
		seedFlag     = flag.Uint64("seed", 2002, "seed for the interarrival streams")
		timeoutFlag  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	if len(targets) == 0 {
		log.Fatal("need -target")
	}
	arrivals, err := cli.ParseFloats(*arrivalsFlag)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}

	res, err := serve.RunLoad(serve.LoadConfig{
		Targets:  targets,
		Arrivals: arrivals,
		Duration: *durationFlag,
		Warmup:   *warmupFlag,
		Seed:     *seedFlag,
		Timeout:  *timeoutFlag,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %10s %10s %10s %10s %12s %12s %12s\n",
		"user", "sent", "ok", "rejected", "failed", "mean(ms)", "min(ms)", "max(ms)")
	for i := range res.Sent {
		fmt.Printf("%-6d %10d %10d %10d %10d %12.3f %12.3f %12.3f\n",
			i, res.Sent[i], res.OK[i], res.Rejected[i], res.Failed[i],
			1e3*res.MeanSeconds[i], 1e3*res.MinSeconds[i], 1e3*res.MaxSeconds[i])
	}
	var ok, rejected, failed int64
	var s429, s503, s5xx, shed, timeouts, trans int64
	for i := range res.Sent {
		ok += res.OK[i]
		rejected += res.Rejected[i]
		failed += res.Failed[i]
		s429 += res.Status429[i]
		s503 += res.Status503[i]
		s5xx += res.Status5xx[i]
		shed += res.Shed[i]
		timeouts += res.Timeouts[i]
		trans += res.TransportErrors[i]
	}
	fmt.Printf("%-6s %10d %10d %10d %10d %12.3f\n",
		"all", res.TotalSent, ok, rejected, failed, 1e3*res.Mean)
	if rejected+failed > 0 {
		fmt.Printf("breakdown: 429=%d 503=%d (shed=%d) other-5xx=%d timeout=%d transport=%d\n",
			s429, s503, shed, s5xx, timeouts, trans)
	}
	if len(targets) > 1 {
		fmt.Printf("\n%-40s %10s %10s %10s %10s %10s %10s %10s\n",
			"target (attempts)", "sent", "2xx", "429", "503", "shed", "5xx", "transport")
		for _, tc := range res.PerTarget {
			fmt.Printf("%-40s %10d %10d %10d %10d %10d %10d %10d\n",
				tc.Target, tc.Sent, tc.Status2xx, tc.Status429, tc.Status503,
				tc.Shed, tc.Status5xx, tc.Transport+tc.Timeouts)
		}
		fmt.Printf("failovers: %d\n", res.Failovers)
	}
}
