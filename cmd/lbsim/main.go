// Command lbsim runs the discrete-event simulator on a system under a
// chosen load-balancing scheme and reports replicated measurements with 95%
// confidence intervals — the same pipeline the paper used via Sim++.
//
// Usage:
//
//	lbsim -rates 6x10,5x20,3x50,2x100 -arrivals 10x30.6 -scheme NASH
//	      [-duration 4000] [-warmup 400] [-reps 5] [-seed 2002]
//	      [-arrival-model poisson|deterministic|bursty] [-arrival-scv 4]
//	      [-service-model exponential|deterministic|bursty] [-service-scv 4]
//	      [-trace jobs.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nashlb"
	"nashlb/internal/cli"
	"nashlb/internal/cluster"
	"nashlb/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbsim: ")
	var (
		ratesFlag    = flag.String("rates", "6x10,5x20,3x50,2x100", "computer processing rates (jobs/s)")
		arrivalsFlag = flag.String("arrivals", "10x30.6", "user arrival rates (jobs/s)")
		schemeFlag   = flag.String("scheme", "NASH", "load-balancing scheme: NASH, GOS, IOS or PS")
		durationFlag = flag.Float64("duration", 4000, "measured simulated seconds per replication")
		warmupFlag   = flag.Float64("warmup", 400, "warmup seconds excluded from statistics")
		repsFlag     = flag.Int("reps", 5, "number of independent replications")
		seedFlag     = flag.Uint64("seed", 2002, "random seed")
		arrivalFlag  = flag.String("arrival-model", "poisson", "arrival process: poisson, deterministic or bursty")
		scvFlag      = flag.Float64("arrival-scv", 4, "squared coefficient of variation for bursty arrivals")
		serviceFlag  = flag.String("service-model", "exponential", "service process: exponential, deterministic or bursty")
		sscvFlag     = flag.Float64("service-scv", 4, "squared coefficient of variation for bursty service")
		traceFlag    = flag.String("trace", "", "write a per-job CSV trace of one extra replication to this file")
	)
	flag.Parse()

	rates, err := cli.ParseFloats(*ratesFlag)
	if err != nil {
		log.Fatalf("-rates: %v", err)
	}
	arrivals, err := cli.ParseFloats(*arrivalsFlag)
	if err != nil {
		log.Fatalf("-arrivals: %v", err)
	}
	sys, err := nashlb.NewSystem(rates, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	var scheme nashlb.Scheme
	for _, s := range nashlb.AllSchemes() {
		if strings.EqualFold(s.Name(), *schemeFlag) {
			scheme = s
		}
	}
	if scheme == nil {
		log.Fatalf("-scheme: unknown scheme %q (want NASH, GOS, IOS or PS)", *schemeFlag)
	}

	ev, err := nashlb.RunScheme(scheme, sys)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nashlb.SimConfig{
		Rates:    sys.Rates,
		Arrivals: sys.Arrivals,
		Profile:  ev.Profile,
		Duration: *durationFlag,
		Warmup:   *warmupFlag,
		Seed:     *seedFlag,
	}
	switch strings.ToLower(*arrivalFlag) {
	case "poisson":
	case "deterministic":
		cfg.Arrival = cluster.DeterministicArrivals
	case "bursty":
		cfg.Arrival = cluster.BurstyArrivals
		cfg.SCV = *scvFlag
	default:
		log.Fatalf("-arrival-model: unknown model %q", *arrivalFlag)
	}
	switch strings.ToLower(*serviceFlag) {
	case "exponential":
	case "deterministic":
		cfg.Service = cluster.DeterministicService
	case "bursty":
		cfg.Service = cluster.BurstyService
		cfg.ServiceSCV = *sscvFlag
	default:
		log.Fatalf("-service-model: unknown model %q", *serviceFlag)
	}
	sum, err := nashlb.Replicate(cfg, *repsFlag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d computers / %d users at %.1f%% utilization — %d replications x %.0f s (+%.0f warmup), %d jobs measured\n",
		ev.Scheme, sys.Computers(), sys.Users(), 100*sys.Utilization(),
		sum.Replications, *durationFlag, *warmupFlag, sum.Completed)
	fmt.Printf("overall expected response time: %s s  (analytic %.6g s)\n",
		report.CI(sum.OverallTime.Mean, sum.OverallTime.HalfWide, 6), ev.OverallTime)
	fmt.Printf("fairness index: %s  (analytic %.4f)\n",
		report.CI(sum.Fairness.Mean, sum.Fairness.HalfWide, 4), ev.Fairness)
	fmt.Printf("max relative CI half-width: %.2f%% (paper acceptance: < 5%%)\n", 100*sum.MaxRelativeError())

	t := report.NewTable("Per-user expected response time", "user", "simulated D_i (s)", "analytic D_i (s)")
	for i, iv := range sum.UserTime {
		t.AddRow(fmt.Sprint(i+1), report.CI(iv.Mean, iv.HalfWide, 6), report.F(ev.UserTimes[i], 6))
	}
	fmt.Println()
	fmt.Print(t.String())

	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
		tw := cluster.NewTraceWriter(f)
		tcfg := cfg
		tcfg.OnJob = tw.Record
		if _, err := nashlb.Simulate(tcfg); err != nil {
			log.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("per-job trace (%d jobs) written to %s\n", tw.Count(), *traceFlag)
	}
}
