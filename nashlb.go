// Package nashlb is a Go implementation of the noncooperative load-balancing
// framework of Grosu & Chronopoulos, "A Game-Theoretic Model and Algorithm
// for Load Balancing in Distributed Systems" (IPDPS/APDCM 2002).
//
// A distributed system of n heterogeneous M/M/1 computers (rates mu_j) is
// shared by m selfish users (Poisson arrival rates phi_i). Each user picks
// the fractions of its jobs to send to each computer so as to minimize its
// own expected response time. The package computes:
//
//   - each user's optimal strategy against the others (Optimal — the
//     paper's OPTIMAL water-filling algorithm, Theorems 2.1/2.2),
//   - the Nash equilibrium of the game (SolveNash — the paper's NASH
//     distributed best-reply algorithm, with NASH_0 and NASH_P
//     initializations), also over real message-passing rings
//     (SolveNashRing / SolveNashTCP),
//   - the three classical baselines the paper compares against:
//     Proportional (PS), Global Optimal (GOS) and Individual Optimal /
//     Wardrop (IOS),
//   - discrete-event simulations of any strategy profile (Simulate,
//     Replicate) with warmup deletion and replicated confidence intervals.
//
// Quick start:
//
//	sys, _ := nashlb.NewSystem(
//	    []float64{100, 50, 20}, // computer rates (jobs/s)
//	    []float64{40, 30},      // user arrival rates (jobs/s)
//	)
//	res, _ := nashlb.SolveNash(sys, nashlb.NashOptions{Init: nashlb.InitProportional})
//	fmt.Println(res.Profile, res.UserTimes)
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments; see DESIGN.md and EXPERIMENTS.md.
package nashlb

import (
	"nashlb/internal/cluster"
	"nashlb/internal/core"
	"nashlb/internal/dist"
	"nashlb/internal/game"
	"nashlb/internal/megascale"
	"nashlb/internal/schemes"
	"nashlb/internal/stats"
)

// System describes the distributed system: computer processing rates and
// user arrival rates.
type System = game.System

// Strategy is one user's load-balancing strategy (fractions per computer).
type Strategy = game.Strategy

// Profile is a full strategy profile, one Strategy per user.
type Profile = game.Profile

// NewSystem validates and builds a System from computer rates mu_j and user
// arrival rates phi_i.
func NewSystem(rates, arrivals []float64) (*System, error) {
	return game.NewSystem(rates, arrivals)
}

// Optimal computes a user's best-response strategy (the paper's OPTIMAL
// algorithm) given the available processing rates it sees and its own
// arrival rate.
func Optimal(available []float64, arrival float64) (Strategy, error) {
	return core.Optimal(available, arrival)
}

// Init selects the NASH iteration's starting point.
type Init = core.Init

// Initializations of the NASH iteration.
const (
	// InitZero is the paper's NASH_0 (all-zero start).
	InitZero = core.InitZero
	// InitProportional is the paper's NASH_P (proportional start).
	InitProportional = core.InitProportional
)

// NashOptions configures SolveNash.
type NashOptions = core.Options

// NashResult is the outcome of SolveNash.
type NashResult = core.Result

// SolveNash computes the Nash equilibrium of the load-balancing game by
// round-robin best-reply iteration (the paper's NASH algorithm, run as a
// sequential driver).
func SolveNash(sys *System, opts NashOptions) (*NashResult, error) {
	return core.Solve(sys, opts)
}

// SolveNashFrom warm-starts the iteration from an explicit profile (e.g.
// the previous equilibrium after a parameter change).
func SolveNashFrom(sys *System, start Profile, opts NashOptions) (*NashResult, error) {
	return core.SolveFrom(sys, start, opts)
}

// VerifyEquilibrium checks that a profile is an eps-Nash equilibrium and
// returns the largest unilateral improvement available to any user.
func VerifyEquilibrium(sys *System, p Profile, eps float64) (bool, float64, error) {
	return core.VerifyEquilibrium(sys, p, eps)
}

// RingOptions configures the distributed ring solvers.
type RingOptions = dist.Options

// RingResult is the outcome of a distributed solve.
type RingResult = dist.Result

// SolveNashRing runs the paper's distributed token-ring protocol over
// in-process channels (one goroutine per user).
func SolveNashRing(sys *System, opts RingOptions) (*RingResult, error) {
	return dist.Solve(sys, opts)
}

// SolveNashTCP runs the token-ring protocol over loopback TCP connections
// with a JSON codec — the full wire path of a deployment.
func SolveNashTCP(sys *System, opts RingOptions) (*RingResult, error) {
	return dist.SolveTCP(sys, opts)
}

// Scheme is a static load-balancing scheme producing a full profile.
type Scheme = schemes.Scheme

// Evaluation bundles the analytic metrics of a profile.
type Evaluation = schemes.Evaluation

// The paper's schemes.
type (
	// NashScheme is the paper's noncooperative scheme as a Scheme.
	NashScheme = schemes.Nash
	// Proportional is the PS baseline.
	Proportional = schemes.Proportional
	// GlobalOptimal is the GOS baseline.
	GlobalOptimal = schemes.GlobalOptimal
	// IndividualOptimal is the IOS (Wardrop) baseline.
	IndividualOptimal = schemes.IndividualOptimal
)

// AllSchemes returns NASH, GOS, IOS and PS in the paper's presentation
// order.
func AllSchemes() []Scheme { return schemes.All() }

// RunScheme allocates with the scheme and evaluates the result analytically.
func RunScheme(s Scheme, sys *System) (Evaluation, error) {
	return schemes.Run(s, sys)
}

// Evaluate computes the analytic metrics of an arbitrary profile.
func Evaluate(sys *System, name string, p Profile) Evaluation {
	return schemes.Evaluate(sys, name, p)
}

// SimConfig configures a discrete-event simulation run.
type SimConfig = cluster.Config

// SimResult holds one run's measurements.
type SimResult = cluster.RunResult

// SimSummary aggregates replications into confidence intervals.
type SimSummary = cluster.Summary

// Interval is a symmetric confidence interval.
type Interval = stats.Interval

// Simulate performs one discrete-event run of the system under a profile.
func Simulate(cfg SimConfig) (*SimResult, error) {
	return cluster.Simulate(cfg)
}

// Replicate runs independent replications on the deterministic parallel
// engine (internal/replicate) and summarizes them with 95% Student-t
// confidence intervals. The summary is bitwise identical for any worker
// count; the pool defaults to GOMAXPROCS.
func Replicate(cfg SimConfig, reps int) (*SimSummary, error) {
	return cluster.Replicate(cfg, reps)
}

// ReplicateWorkers is Replicate with an explicit worker-pool size (values
// <= 0 select GOMAXPROCS). Changing workers never changes the results,
// only the wall-clock time.
func ReplicateWorkers(cfg SimConfig, reps, workers int) (*SimSummary, error) {
	return cluster.ReplicateWorkers(cfg, reps, workers)
}

// JainFairness returns Jain's fairness index of a vector of per-user
// expected response times.
func JainFairness(times []float64) float64 {
	return stats.JainFairness(times)
}

// JainFairnessWeighted returns Jain's fairness index of a population given in
// class-aggregated form: times[c] shared by weights[c] identical users.
func JainFairnessWeighted(times, weights []float64) float64 {
	return stats.JainFairnessWeighted(times, weights)
}

// UserClass is a group of identical users: Count members, each with arrival
// rate Phi, optionally restricted to a sorted subset of machines.
type UserClass = megascale.Class

// ClassSystem is the class-aggregated form of System for planet-scale
// populations: the solve cost depends on the number of classes, not users.
type ClassSystem = megascale.ClassSystem

// ClassProfile is a sparse (CSR) strategy profile with one row per class.
type ClassProfile = megascale.ClassProfile

// ClassOptions configures SolveNashClasses.
type ClassOptions = megascale.Options

// ClassResult is the outcome of SolveNashClasses.
type ClassResult = megascale.Result

// NewClassSystem validates and builds a class-aggregated system.
func NewClassSystem(rates []float64, classes []UserClass) (*ClassSystem, error) {
	return megascale.NewClassSystem(rates, classes)
}

// ClassifyUsers aggregates a dense per-user System into classes of users with
// identical arrival rates, returning the class system and each user's class.
func ClassifyUsers(sys *System) (*ClassSystem, []int) {
	return megascale.FromSystem(sys)
}

// SolveNashClasses computes the Nash equilibrium of the class-aggregated game
// with the incremental sparse best-reply engine (internal/megascale).
func SolveNashClasses(cs *ClassSystem, opts ClassOptions) (*ClassResult, error) {
	return megascale.Solve(cs, opts)
}

// SolveNashAggregated is a drop-in replacement for SolveNash that internally
// aggregates identical users into classes, solves the class game, and expands
// the result back to per-user form. Identical semantics, and dramatically
// faster whenever many users share an arrival rate.
func SolveNashAggregated(sys *System, opts NashOptions) (*NashResult, error) {
	return megascale.SolveSystem(sys, opts)
}
