// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4) plus the DESIGN.md ablations. Each benchmark runs the
// corresponding experiment and reports the headline shape metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the study's
// qualitative results alongside the cost of producing them. The full
// high-fidelity sweeps (paper-scale simulation durations, text tables, CSV)
// are produced by cmd/experiments.
package nashlb_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"nashlb/internal/cluster"
	"nashlb/internal/core"
	"nashlb/internal/experiments"
	"nashlb/internal/rng"
	"nashlb/internal/schemes"
)

// BenchmarkTable1Configuration regenerates Table 1 (system configuration).
func BenchmarkTable1Configuration(b *testing.B) {
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1().Rows()
	}
	b.ReportMetric(float64(rows), "computer-types")
}

// BenchmarkFig2NashConvergenceNorm regenerates Figure 2 (norm vs iteration
// for NASH_0 and NASH_P, Table-1 system at 60% utilization).
func BenchmarkFig2NashConvergenceNorm(b *testing.B) {
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig2(0.6, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.NormsZero)), "nash0-iters")
	b.ReportMetric(float64(len(res.NormsProp)), "nashP-iters")
	b.ReportMetric(res.NormsZero[0], "nash0-initial-norm")
	b.ReportMetric(res.NormsProp[0], "nashP-initial-norm")
}

// BenchmarkFig3IterationsVsUsers regenerates Figure 3 (iterations to
// equilibrium for 4..32 users under both initializations).
func BenchmarkFig3IterationsVsUsers(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig3(0.6, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.RoundsZero), "nash0-iters-32users")
	b.ReportMetric(float64(last.RoundsProp), "nashP-iters-32users")
}

// BenchmarkFig4UtilizationSweep regenerates Figure 4 (response time and
// fairness vs utilization for NASH/GOS/IOS/PS). The benchmark runs the
// analytic sweep; key paper shapes are reported as metrics: the NASH/GOS
// and NASH/PS overall-time ratios at 50% load and the GOS fairness at 90%.
func BenchmarkFig4UtilizationSweep(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig4(experiments.QuickSim(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	var nash50, gos50, ps50, gosFair90 float64
	for _, pt := range res.Points {
		rho := math.Round(pt.Utilization * 10)
		switch {
		case rho == 5 && pt.Scheme == "NASH":
			nash50 = pt.AnalyticTime
		case rho == 5 && pt.Scheme == "GOS":
			gos50 = pt.AnalyticTime
		case rho == 5 && pt.Scheme == "PS":
			ps50 = pt.AnalyticTime
		case rho == 9 && pt.Scheme == "GOS":
			gosFair90 = pt.AnalyticFairness
		}
	}
	b.ReportMetric(nash50/gos50, "nash-vs-gos-at-50pct")
	b.ReportMetric(nash50/ps50, "nash-vs-ps-at-50pct")
	b.ReportMetric(gosFair90, "gos-fairness-at-90pct")
}

// BenchmarkFig4SimulatedPoint regenerates one simulated cell of Figure 4
// (all four schemes at 60% utilization with replicated DES runs), reporting
// the sim-vs-analytic agreement for NASH.
func BenchmarkFig4SimulatedPoint(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(0.6, experiments.QuickSim(), true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range res.Metrics {
		if m.Scheme == "NASH" {
			b.ReportMetric(m.SimTime.Mean/m.AnalyticTime, "nash-sim-vs-analytic")
		}
	}
}

// BenchmarkFig5PerUser regenerates Figure 5 (per-user expected response
// time of every scheme at 60% utilization), reporting the user-time spread
// of GOS vs NASH that makes GOS unfair and NASH user-optimal.
func BenchmarkFig5PerUser(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(0.6, experiments.QuickSim(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hi - lo
	}
	for _, m := range res.Metrics {
		switch m.Scheme {
		case "NASH":
			b.ReportMetric(spread(m.AnalyticUsers), "nash-user-spread-s")
		case "GOS":
			b.ReportMetric(spread(m.AnalyticUsers), "gos-user-spread-s")
		}
	}
}

// BenchmarkFig6SkewnessSweep regenerates Figure 6 (effect of heterogeneity),
// reporting the NASH/GOS and PS/GOS ratios at skewness 20.
func BenchmarkFig6SkewnessSweep(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig6(0.6, nil, experiments.QuickSim(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	var nash, gos, ps, ios float64
	for _, pt := range res.Points {
		if pt.Skewness != 20 {
			continue
		}
		switch pt.Scheme {
		case "NASH":
			nash = pt.AnalyticTime
		case "GOS":
			gos = pt.AnalyticTime
		case "PS":
			ps = pt.AnalyticTime
		case "IOS":
			ios = pt.AnalyticTime
		}
	}
	b.ReportMetric(nash/gos, "nash-vs-gos-at-skew20")
	b.ReportMetric(ps/gos, "ps-vs-gos-at-skew20")
	b.ReportMetric(ios/gos, "ios-vs-gos-at-skew20")
}

// BenchmarkAblationInitialization regenerates ABL1 (NASH_0 vs NASH_P round
// counts across tolerances).
func BenchmarkAblationInitialization(b *testing.B) {
	var res *experiments.Abl1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl1(0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	tight := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(tight.RoundsZero), "nash0-rounds-eps1e-6")
	b.ReportMetric(float64(tight.RoundsProp), "nashP-rounds-eps1e-6")
}

// BenchmarkAblationWardropSolvers regenerates ABL2 (closed form vs bisection
// vs Frank–Wolfe for the IOS equilibrium).
func BenchmarkAblationWardropSolvers(b *testing.B) {
	var res *experiments.Abl2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl2(0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[2].Iterations), "frank-wolfe-iters")
	b.ReportMetric(res.Rows[1].MaxLoadErr, "bisection-load-err")
}

// BenchmarkAblationGOSAssignment regenerates ABL3 (sequential-fill vs
// uniform GOS split), reporting the fairness gap at the heaviest load.
func BenchmarkAblationGOSAssignment(b *testing.B) {
	var res *experiments.Abl3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl3()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.FairnessSequential, "gos-seq-fairness")
	b.ReportMetric(last.FairnessUniform, "gos-uniform-fairness")
}

// BenchmarkAblationDistributedVsSequential regenerates ABL4 (sequential vs
// channel-ring vs TCP-ring execution of NASH).
func BenchmarkAblationDistributedVsSequential(b *testing.B) {
	var res *experiments.Abl4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl4(0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].Rounds), "rounds")
	b.ReportMetric(res.Rows[2].Elapsed.Seconds()/res.Rows[0].Elapsed.Seconds(), "tcp-over-seq-slowdown")
}

// BenchmarkAblationUpdateOrder regenerates ABL6 (round-robin vs random vs
// damped-Jacobi best-reply dynamics), reporting the NASH_P round savings
// under the ring and under Jacobi (the Figure-2 gap diagnosis).
func BenchmarkAblationUpdateOrder(b *testing.B) {
	var res *experiments.Abl6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl6(0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if !row.Converged {
			continue
		}
		saving := 1 - float64(row.RoundsProp)/float64(row.RoundsZero)
		switch {
		case row.Order == "round-robin":
			b.ReportMetric(saving, "ring-nashP-saving")
		case row.Order == "jacobi":
			b.ReportMetric(saving, "jacobi-nashP-saving")
		}
	}
}

// BenchmarkExtPriceOfAnarchy regenerates EXT1 (coordination ratio of NASH,
// Wardrop and PS vs the global optimum across utilizations), reporting the
// worst ratios over the sweep.
func BenchmarkExtPriceOfAnarchy(b *testing.B) {
	var res *experiments.Ext1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Ext1()
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstNash, worstIOS float64
	for _, row := range res.Rows {
		worstNash = math.Max(worstNash, row.PoANash)
		worstIOS = math.Max(worstIOS, row.PoAWardrop)
	}
	b.ReportMetric(worstNash, "worst-nash-poa")
	b.ReportMetric(worstIOS, "worst-wardrop-poa")
}

// BenchmarkExtBurstinessRobustness regenerates EXT2 (the NASH equilibrium
// simulated under non-Poisson traffic), reporting the response-time
// inflation at SCV 16 relative to the Poisson analytic model.
func BenchmarkExtBurstinessRobustness(b *testing.B) {
	var res *experiments.Ext2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Ext2(0.6, experiments.QuickSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[len(res.Rows)-1].Inflation, "inflation-at-scv16")
}

// BenchmarkAblationRateEstimation regenerates ABL5 (best responses from
// run-queue-estimated rates), reporting the suboptimality at the shortest
// and longest observation windows.
func BenchmarkAblationRateEstimation(b *testing.B) {
	var res *experiments.Abl5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Abl5(0.6, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Suboptimality, "subopt-short-window")
	b.ReportMetric(res.Rows[len(res.Rows)-1].Suboptimality, "subopt-long-window")
}

// weightVector returns a dispatch-shaped weight vector: n positive weights
// summing to 1, skewed like an equilibrium strategy row.
func weightVector(n int) []float64 {
	w := make([]float64, n)
	var total float64
	for j := range w {
		w[j] = 1 / float64(j+1)
		total += w[j]
	}
	for j := range w {
		w[j] /= total
	}
	return w
}

// BenchmarkWeightedPickLinear measures the O(n) cumulative-scan sampler
// (rng.Stream.Choose), the dispatcher's original hot path.
func BenchmarkWeightedPickLinear(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		w := weightVector(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(2002)
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += r.Choose(w)
			}
			sinkInt = acc
		})
	}
}

// BenchmarkWeightedPickAlias measures the O(1) alias-method sampler that
// replaced the linear scan in the cluster dispatcher and the serving
// gateway's router.
func BenchmarkWeightedPickAlias(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		a, err := rng.NewAlias(weightVector(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(2002)
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += a.Pick(r)
			}
			sinkInt = acc
		})
	}
}

var sinkInt int

// BenchmarkCorePipeline is the cross-layer throughput gate: one iteration
// solves the NASH equilibrium of the paper's Table-1 system at 60%
// utilization (game layer) and simulates the cluster at that equilibrium
// for a fixed horizon (DES + cluster layers). bench.sh feeds its jobs/sec
// into BENCH_core.json, so regressions anywhere along the
// solve-route-simulate path show up in one number.
func BenchmarkCorePipeline(b *testing.B) {
	sys, err := experiments.Table1System(0.6)
	if err != nil {
		b.Fatal(err)
	}
	var jobs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nash, err := schemes.Run(schemes.Nash{Init: core.InitProportional}, sys)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cluster.Simulate(cluster.Config{
			Rates:    sys.Rates,
			Arrivals: sys.Arrivals,
			Profile:  nash.Profile,
			Duration: 500,
			Warmup:   50,
			Seed:     2002,
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs = res.Completed
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}

// BenchmarkCoreReplicationTable1 measures the parallel replication engine
// on the paper's Table-1 system at 60% utilization: one iteration runs a
// full replication sweep (8 independent DES runs pooled into a Summary)
// with a fixed worker count. Sub-benchmarks pin workers to 1, 4 and
// GOMAXPROCS, so the reported reps/sec ratios quantify the engine's
// speedup on whatever machine runs the suite; bench.sh records all three
// in BENCH_core.json. The pooled results are bitwise identical across the
// sub-benchmarks — only the wall clock moves.
func BenchmarkCoreReplicationTable1(b *testing.B) {
	sys, err := experiments.Table1System(0.6)
	if err != nil {
		b.Fatal(err)
	}
	nash, err := schemes.Run(schemes.Nash{Init: core.InitProportional}, sys)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cluster.Config{
		Rates:    sys.Rates,
		Arrivals: sys.Arrivals,
		Profile:  nash.Profile,
		Duration: 120,
		Warmup:   20,
		Seed:     2002,
	}
	const reps = 8
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var jobs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := cluster.ReplicateWorkers(cfg, reps, workers)
				if err != nil {
					b.Fatal(err)
				}
				jobs = sum.Completed
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(reps)*float64(b.N)/secs, "reps/sec")
			b.ReportMetric(float64(jobs)*float64(b.N)/secs, "jobs/sec")
		})
	}
}

// BenchmarkExtFaultTolerance regenerates EXT7's quick grid (the supervised
// NASH ring under injected chaos, a permanent crash and a crash-then-restart
// on the Table-1 system), reporting the recovery work and how far the
// recovered equilibrium sits from the sequential solver.
func BenchmarkExtFaultTolerance(b *testing.B) {
	var res *experiments.Ext7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Ext7(0.6, 2002, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	var recoveries, ejections float64
	var worstDev float64
	for _, row := range res.Rows {
		recoveries += float64(row.Recoveries)
		ejections += float64(len(row.Ejected))
		worstDev = math.Max(worstDev, row.DevVsSeq)
	}
	b.ReportMetric(recoveries, "recoveries")
	b.ReportMetric(ejections, "ejections")
	b.ReportMetric(worstDev, "worst-dev-vs-seq")
}

// BenchmarkExtLiveServing regenerates EXT8 (closed form vs discrete-event
// simulation vs the live nashgate HTTP gateway under loadgen traffic, quick
// windows). Each iteration really serves traffic over loopback sockets for
// the live window, so b.N stays small.
func BenchmarkExtLiveServing(b *testing.B) {
	var res *experiments.Ext8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Ext8(7, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	sim, live := res.Rows[1], res.Rows[2]
	b.ReportMetric(res.Predicted, "predicted-D-s")
	b.ReportMetric(sim.RelErr, "sim-rel-err")
	b.ReportMetric(live.RelErr, "live-rel-err")
	b.ReportMetric(live.MaxSplitDev, "live-split-dev")
	b.ReportMetric(float64(live.Jobs), "live-jobs")
}
