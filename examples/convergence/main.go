// Convergence study: the paper's Figure 2 — how fast the best-reply
// iteration reaches the Nash equilibrium under the NASH_0 (zero) and NASH_P
// (proportional) initializations, rendered as a log-scale ASCII chart.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"nashlb"
	"nashlb/internal/experiments"
	"nashlb/internal/plot"
)

func main() {
	sys, err := experiments.Table1System(0.6)
	if err != nil {
		log.Fatal(err)
	}

	chart := plot.New("NASH convergence on the paper's Table-1 system (60% utilization)")
	chart.LogY = true
	chart.XLabel = "iteration"
	chart.YLabel = "norm = sum_i |D_i - D_i_prev|"
	for _, c := range []struct {
		name   string
		marker byte
		init   nashlb.Init
	}{
		{"NASH_0", '*', nashlb.InitZero},
		{"NASH_P", 'o', nashlb.InitProportional},
	} {
		res, err := nashlb.SolveNash(sys, nashlb.NashOptions{Init: c.init, Epsilon: 1e-6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s converged in %d iterations (final norm %.2e)\n",
			c.name, res.Rounds, res.Norms[len(res.Norms)-1])
		if err := chart.Add(plot.Series{Name: c.name, Marker: c.marker, Y: res.Norms}); err != nil {
			log.Fatal(err)
		}
	}

	out, err := chart.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(out)
	fmt.Println("NASH_P starts closer to the equilibrium, so its norm curve sits below")
	fmt.Println("NASH_0's from the first iterations onward (the paper's Figure 2).")
}
