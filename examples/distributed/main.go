// Distributed scenario: the NASH algorithm running as a real token-ring
// protocol — one goroutine per user connected over loopback TCP with a JSON
// codec — exactly the deployment shape of the paper's Section 3.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"nashlb"
)

func main() {
	sys, err := nashlb.NewSystem(
		[]float64{100, 100, 50, 50, 20, 20, 10, 10}, // 8 computers
		[]float64{50, 40, 30, 30, 20, 10},           // 6 users
	)
	if err != nil {
		log.Fatal(err)
	}

	// In-process channel ring (fastest; one goroutine per user).
	start := time.Now()
	chanRes, err := nashlb.SolveNashRing(sys, nashlb.RingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel ring: %d circulations, %v, overall D = %.6f s\n",
		chanRes.Rounds, time.Since(start).Round(time.Microsecond), chanRes.OverallTime)

	// Loopback TCP ring with a JSON wire codec (the production path).
	start = time.Now()
	tcpRes, err := nashlb.SolveNashTCP(sys, nashlb.RingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP ring:     %d circulations, %v, overall D = %.6f s\n",
		tcpRes.Rounds, time.Since(start).Round(time.Microsecond), tcpRes.OverallTime)

	// Both must land on the same equilibrium as the sequential solver.
	seq, err := nashlb.SolveNash(sys, nashlb.NashOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:   %d rounds,                overall D = %.6f s\n", seq.Rounds, seq.OverallTime)

	fmt.Println("\nper-user expected response times at the equilibrium:")
	for i, d := range tcpRes.UserTimes {
		fmt.Printf("  user %d: %.6f s\n", i+1, d)
	}
}
