// Dynamic load scenario (the paper's future-work direction): arrival rates
// drift over the day, and the NASH equilibrium is recomputed periodically,
// warm-started from the previous one. The trace shows how stale an old
// equilibrium becomes and how cheap the periodic re-balance is.
//
// Run with:
//
//	go run ./examples/dynamicload
package main

import (
	"fmt"
	"log"

	"nashlb/internal/dynamic"
	"nashlb/internal/report"
)

func main() {
	// Eight computers, three user classes whose traffic oscillates +/-40%
	// around its base with staggered phases (think time zones).
	rb := &dynamic.Rebalancer{
		Rates:    []float64{100, 100, 50, 50, 20, 20, 10, 10},
		Arrivals: dynamic.Sinusoidal([]float64{80, 60, 40}, 0.4, 240),
		Period:   20, // re-balance every 20 time units
	}
	steps, err := rb.Trace(240)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Periodic NASH re-balancing under drifting load",
		"t", "total load (jobs/s)", "fresh D (s)", "stale D (s)", "best stale deviation gain (s)", "rounds")
	for _, s := range steps {
		var total float64
		for _, a := range s.Arrivals {
			total += a
		}
		t.AddRow(
			report.Fix(s.Time, 0),
			report.Fix(total, 1),
			report.F(s.FreshTime, 4),
			report.F(s.StaleTime, 4),
			report.F(s.StaleGain, 3),
			fmt.Sprint(s.Rounds),
		)
	}
	fmt.Print(t.String())
	fmt.Println("\n'stale D' is the response time had yesterday's equilibrium been kept;")
	fmt.Println("'deviation gain' is how much the luckiest user could grab by re-routing —")
	fmt.Println("zero means the old equilibrium still holds. Warm-started re-balances")
	fmt.Println("never need more rounds than the cold start and shrink as drift slows.")
}
