// Heterogeneous-cluster scenario: the paper's Table-1 system (16 computers
// in four speed classes, 10 users with a skewed traffic mix) evaluated under
// all four schemes, analytically and by discrete-event simulation.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"nashlb"
	"nashlb/internal/report"
)

func main() {
	// Table 1 of the paper: rates {10,20,50,100} jobs/s with counts
	// {6,5,3,2}; 10 users carrying a skewed share of 60% utilization.
	rates := make([]float64, 0, 16)
	for _, group := range []struct {
		count int
		rate  float64
	}{{6, 10}, {5, 20}, {3, 50}, {2, 100}} {
		for k := 0; k < group.count; k++ {
			rates = append(rates, group.rate)
		}
	}
	mix := []float64{0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.05, 0.05, 0.04}
	const utilization = 0.6
	total := 510.0 * utilization
	arrivals := make([]float64, len(mix))
	for i, q := range mix {
		arrivals[i] = q * total
	}

	sys, err := nashlb.NewSystem(rates, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Scheme comparison on the paper's Table-1 system (60% utilization)",
		"scheme", "analytic D (s)", "simulated D (s)", "fairness")
	for _, s := range nashlb.AllSchemes() {
		ev, err := nashlb.RunScheme(s, sys)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		sum, err := nashlb.Replicate(nashlb.SimConfig{
			Rates:    sys.Rates,
			Arrivals: sys.Arrivals,
			Profile:  ev.Profile,
			Duration: 1000,
			Warmup:   100,
			Seed:     7,
		}, 3)
		if err != nil {
			log.Fatalf("%s simulation: %v", s.Name(), err)
		}
		t.AddRow(ev.Scheme,
			report.F(ev.OverallTime, 5),
			report.CI(sum.OverallTime.Mean, sum.OverallTime.HalfWide, 5),
			report.Fix(ev.Fairness, 3))
	}
	fmt.Print(t.String())
	fmt.Println("\nNASH tracks GOS closely while giving every user its individually optimal time;")
	fmt.Println("PS overloads the slow computers; IOS is fair but slower than NASH.")
}
