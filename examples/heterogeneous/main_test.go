package main

import "testing"

// TestHeterogeneousSmoke runs the example end to end: all four schemes on
// the Table-1 system plus replicated DES runs through the public
// nashlb.Replicate API (which fans out on the parallel replication engine).
// main uses log.Fatal on any error, which exits the test binary non-zero,
// so a plain call is a complete smoke test.
func TestHeterogeneousSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated DES runs are not short-mode work")
	}
	main()
}
