// Quickstart: three computers, two selfish users, one Nash equilibrium.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nashlb"
)

func main() {
	// A small heterogeneous system: one fast, one medium, one slow
	// computer (rates in jobs/second)...
	rates := []float64{100, 50, 20}
	// ...shared by two users with different traffic volumes.
	arrivals := []float64{60, 40}

	sys, err := nashlb.NewSystem(rates, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	// Compute the Nash equilibrium with the paper's NASH algorithm
	// (proportional initialization: the faster NASH_P variant).
	res, err := nashlb.SolveNash(sys, nashlb.NashOptions{Init: nashlb.InitProportional})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d best-reply rounds\n\n", res.Rounds)
	for i, s := range res.Profile {
		fmt.Printf("user %d (%.0f jobs/s) sends fractions %.3f to the computers; expected response time %.4f s\n",
			i+1, arrivals[i], s, res.UserTimes[i])
	}
	fmt.Printf("\noverall expected response time: %.4f s\n", res.OverallTime)

	// No user can do better by unilaterally re-routing its jobs:
	ok, improvement, err := nashlb.VerifyEquilibrium(sys, res.Profile, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equilibrium verified: %v (best possible unilateral gain: %.2g s)\n", ok, improvement)
}
