package main

import "testing"

// TestQuickstartSmoke runs the example end to end. main uses log.Fatal on
// any error, which exits the test binary non-zero, so a plain call is a
// complete smoke test: it fails CI whenever the public API the example
// demonstrates stops working the way the README shows it.
func TestQuickstartSmoke(t *testing.T) {
	main()
}
