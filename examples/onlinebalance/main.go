// Online balancing scenario: the paper's NASH algorithm running against a
// LIVE cluster. The simulated system starts with the naive proportional
// (PS) dispatch; the online balancer samples the run queues (the paper's
// Remark 2: "statistical estimation of the run queue length"), and every
// few seconds one user recomputes its best response from those estimates —
// the token-ring discipline applied to a running system. Watch the measured
// response time migrate from the PS level down to the Nash equilibrium.
//
// Run with:
//
//	go run ./examples/onlinebalance
package main

import (
	"fmt"
	"log"

	"nashlb/internal/experiments"
	"nashlb/internal/plot"
)

func main() {
	res, err := experiments.Ext5(0.6, 2400, 2002)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table().String())

	chart := plot.New("Measured response time while the online NASH policy re-balances")
	chart.XLabel = "simulated time (s)"
	chart.YLabel = "mean response time (s)"
	xs := make([]float64, len(res.Windows))
	ys := make([]float64, len(res.Windows))
	for i, w := range res.Windows {
		xs[i] = (w.From + w.To) / 2
		ys[i] = w.MeasuredD
	}
	if err := chart.Add(plot.Series{Name: "measured", Marker: '*', X: xs, Y: ys}); err != nil {
		log.Fatal(err)
	}
	flat := func(name string, marker byte, level float64) {
		lvl := []float64{level, level}
		if err := chart.Add(plot.Series{Name: name, Marker: marker, X: []float64{xs[0], xs[len(xs)-1]}, Y: lvl}); err != nil {
			log.Fatal(err)
		}
	}
	flat("PS level", 'x', res.PSTime)
	flat("NASH level", 'o', res.NashTime)
	out, err := chart.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(out)
	fmt.Printf("the balancer installed %d profile updates; the profiles in the last quarter\n", res.Rebalances)
	fmt.Printf("average %.4g s analytically — the Nash equilibrium is %.4g s.\n", res.TailInstalledD, res.NashTime)
}
