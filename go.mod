module nashlb

go 1.22
