package nashlb_test

import (
	"fmt"
	"log"

	"nashlb"
)

// ExampleSolveNash computes the Nash equilibrium of a small heterogeneous
// system and prints each user's expected response time.
func ExampleSolveNash() {
	sys, err := nashlb.NewSystem(
		[]float64{100, 50, 20}, // computer rates (jobs/s)
		[]float64{60, 40},      // user arrival rates (jobs/s)
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nashlb.SolveNash(sys, nashlb.NashOptions{Init: nashlb.InitProportional})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range res.UserTimes {
		fmt.Printf("user %d: %.4f s\n", i+1, d)
	}
	// Output:
	// user 1: 0.0372 s
	// user 2: 0.0356 s
}

// ExampleOptimal runs the paper's OPTIMAL water-filling best response for a
// single user: note the slow computer receives nothing at this load.
func ExampleOptimal() {
	s, err := nashlb.Optimal([]float64{4, 1}, 1) // available rates; own arrival rate
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fractions: %.2f\n", s)
	// Output:
	// fractions: [1.00 0.00]
}

// ExampleVerifyEquilibrium demonstrates checking that no user can gain by
// unilaterally deviating from a computed profile.
func ExampleVerifyEquilibrium() {
	sys, _ := nashlb.NewSystem([]float64{30, 10}, []float64{12, 12})
	res, _ := nashlb.SolveNash(sys, nashlb.NashOptions{})
	ok, _, _ := nashlb.VerifyEquilibrium(sys, res.Profile, 1e-6)
	fmt.Println("equilibrium:", ok)
	// Output:
	// equilibrium: true
}

// ExampleRunScheme compares the four schemes' overall response times on the
// same system.
func ExampleRunScheme() {
	sys, _ := nashlb.NewSystem([]float64{100, 50, 20, 10}, []float64{40, 30, 20})
	for _, s := range nashlb.AllSchemes() {
		ev, err := nashlb.RunScheme(s, sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s D=%.4f s fairness=%.3f\n", ev.Scheme, ev.OverallTime, ev.Fairness)
	}
	// Output:
	// NASH D=0.0317 s fairness=1.000
	// GOS  D=0.0311 s fairness=0.962
	// IOS  D=0.0333 s fairness=1.000
	// PS   D=0.0444 s fairness=1.000
}

// ExampleJainFairness computes Jain's index for a vector of per-user
// response times.
func ExampleJainFairness() {
	fmt.Printf("%.2f\n", nashlb.JainFairness([]float64{4, 2}))
	// Output:
	// 0.90
}
