#!/bin/sh
# Full verification: the tier-1 gate (build + tests) plus static analysis
# and the race detector over the concurrent packages (the distributed ring
# with its fault-tolerance layer, the online balancer, the live HTTP
# serving stack, and the gateway-fleet control plane — including the
# self-healing chaos tests in internal/serve and the leader-failover tests
# in internal/fleet; the long crash/recovery e2e runs gate themselves
# behind -short).
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/dist/... ./internal/online/... ./internal/serve/... ./internal/replicate/... ./internal/cluster/... ./internal/fleet/... ./internal/megascale/..."
go test -race ./internal/dist/... ./internal/online/... ./internal/serve/... ./internal/replicate/... ./internal/cluster/... ./internal/fleet/... ./internal/megascale/...

# Fuzz smoke: a short randomized run of each native fuzz target (bisection
# root finder, M/M/1 queue-depth inversion, fleet wire codec, durable
# snapshot decoder, user-class spec parser). Regressions show up as crasher
# inputs; Go allows one -fuzz target per invocation.
echo "== go test -fuzz (smoke, 10s each)"
go test -run '^$' -fuzz FuzzBisect -fuzztime 10s ./internal/numeric
go test -run '^$' -fuzz FuzzQueueInversion -fuzztime 10s ./internal/estimate
go test -run '^$' -fuzz FuzzFleetWire -fuzztime 10s ./internal/fleet
go test -run '^$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/fleet
go test -run '^$' -fuzz FuzzParseClasses -fuzztime 10s ./internal/cli
go test -run '^$' -fuzz FuzzInstallTable -fuzztime 10s ./internal/serve

# Serving-throughput regression gates: the forwarding hot path must keep
# its >=3x advantage over the pre-PR per-request work, and the closed-loop
# harness must keep exposing coordinated omission (corrected percentiles
# reflect a seeded stall the uncorrected view hides). TestForwardPathAllocs
# below holds the hot path at zero steady-state allocations.
echo "== go test -run 'HotPathSpeedup|CoordinatedOmission' ./internal/serve"
go test -run 'HotPathSpeedup|CoordinatedOmission' -count=1 ./internal/serve

# Allocation-regression gate: the steady-state DES, cluster-job, gateway
# record and megascale solver round paths must stay at zero allocations per
# operation (the testing.AllocsPerRun tests; benchmarks in bench.sh track
# the same paths).
echo "== go test -run 'Allocs' ./internal/des ./internal/cluster ./internal/serve ./internal/megascale"
go test -run 'Allocs' ./internal/des ./internal/cluster ./internal/serve ./internal/megascale

echo "verify: OK"
