#!/bin/sh
# Full verification: the tier-1 gate (build + tests) plus static analysis
# and the race detector over the concurrent packages (the distributed ring
# with its fault-tolerance layer, the online balancer, and the live HTTP
# serving stack).
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/dist/... ./internal/online/... ./internal/serve/..."
go test -race ./internal/dist/... ./internal/online/... ./internal/serve/...

# Allocation-regression gate: the steady-state DES, cluster-job and gateway
# record paths must stay at zero allocations per operation (the
# testing.AllocsPerRun tests; benchmarks in bench.sh track the same paths).
echo "== go test -run 'Allocs' ./internal/des ./internal/cluster ./internal/serve"
go test -run 'Allocs' ./internal/des ./internal/cluster ./internal/serve

echo "verify: OK"
