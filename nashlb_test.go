package nashlb_test

import (
	"math"
	"testing"

	"nashlb"
)

func demoSystem(t testing.TB) *nashlb.System {
	t.Helper()
	sys, err := nashlb.NewSystem([]float64{100, 50, 20, 10}, []float64{40, 30, 20})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sys := demoSystem(t)
	res, err := nashlb.SolveNash(sys, nashlb.NashOptions{Init: nashlb.InitProportional})
	if err != nil {
		t.Fatal(err)
	}
	ok, impr, err := nashlb.VerifyEquilibrium(sys, res.Profile, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("not an equilibrium (improvement %g)", impr)
	}
	// Ring solvers agree with the sequential one.
	ring, err := nashlb.SolveNashRing(sys, nashlb.RingOptions{Init: nashlb.InitProportional})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ring.OverallTime-res.OverallTime) > 1e-9 {
		t.Fatalf("ring %v vs sequential %v", ring.OverallTime, res.OverallTime)
	}
}

func TestPublicSchemes(t *testing.T) {
	sys := demoSystem(t)
	if len(nashlb.AllSchemes()) != 4 {
		t.Fatal("expected 4 schemes")
	}
	var gosTime float64
	for _, s := range nashlb.AllSchemes() {
		ev, err := nashlb.RunScheme(s, sys)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if ev.OverallTime <= 0 {
			t.Fatalf("%s: bad overall time %v", s.Name(), ev.OverallTime)
		}
		if s.Name() == "GOS" {
			gosTime = ev.OverallTime
		}
	}
	if gosTime == 0 {
		t.Fatal("GOS missing from AllSchemes")
	}
}

func TestPublicOptimalAndEvaluate(t *testing.T) {
	s, err := nashlb.Optimal([]float64{30, 10}, 12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range s {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	sys := demoSystem(t)
	p := make(nashlb.Profile, sys.Users())
	for i := range p {
		p[i] = nashlb.Strategy{0.5, 0.3, 0.1, 0.1}
	}
	ev := nashlb.Evaluate(sys, "demo", p)
	if ev.Scheme != "demo" || ev.OverallTime <= 0 {
		t.Fatalf("evaluation wrong: %+v", ev)
	}
	if f := nashlb.JainFairness(ev.UserTimes); f <= 0 || f > 1+1e-12 {
		t.Fatalf("fairness %v", f)
	}
}

func TestPublicSimulation(t *testing.T) {
	sys := demoSystem(t)
	res, err := nashlb.SolveNash(sys, nashlb.NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := nashlb.SimConfig{
		Rates:    sys.Rates,
		Arrivals: sys.Arrivals,
		Profile:  res.Profile,
		Duration: 2000,
		Warmup:   200,
		Seed:     9,
	}
	sum, err := nashlb.Replicate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.OverallTime.Mean-res.OverallTime) > 0.15*res.OverallTime {
		t.Fatalf("simulated %v far from analytic %v", sum.OverallTime.Mean, res.OverallTime)
	}
}

func TestPublicTCPRing(t *testing.T) {
	sys, err := nashlb.NewSystem([]float64{50, 20}, []float64{15, 10})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := nashlb.SolveNash(sys, nashlb.NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := nashlb.SolveNashTCP(sys, nashlb.RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tcp.OverallTime-seq.OverallTime) > 1e-9 {
		t.Fatalf("TCP %v vs sequential %v", tcp.OverallTime, seq.OverallTime)
	}
}

func TestPublicSingleSimulate(t *testing.T) {
	res, err := nashlb.Simulate(nashlb.SimConfig{
		Rates:    []float64{10},
		Arrivals: []float64{6},
		Profile:  nashlb.Profile{{1}},
		Duration: 3000,
		Warmup:   300,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.25; math.Abs(res.OverallMean()-want) > 0.05*want {
		t.Fatalf("simulated %v, closed form %v", res.OverallMean(), want)
	}
}

func TestPublicWarmStart(t *testing.T) {
	sys := demoSystem(t)
	first, err := nashlb.SolveNash(sys, nashlb.NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := nashlb.SolveNashFrom(sys, first.Profile, nashlb.NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rounds > 2 {
		t.Fatalf("warm start took %d rounds", warm.Rounds)
	}
}
